// Property-based fuzzing & differential-oracle front end:
//
//   fuzzsim [--episodes=100] [--seed=1] [--policy=SPEED]
//           [--mode=spmd|serve|cluster] [--hetero] [--adaptive]
//           [--jobs-oracle-every=25] [--max-seconds=0] [--minimize]
//           [--out=FILE] [--verbose]
//   fuzzsim --replay=FILE [--minimize] [--out=FILE]
//   fuzzsim --broken=cross-numa|cooldown|threshold|lose-task|hot-potato
//   fuzzsim --analytic
//   fuzzsim --hetero-grid
//
// The default loop draws episode e from generate(seed + e), runs it end to
// end under the invariant checker (time conservation, task conservation,
// affinity/NUMA blocking, Section 5 pull rules, serve counters, histogram
// merge, event-queue lockstep), and every --jobs-oracle-every episodes also
// replays the scenario --jobs=1 vs --jobs=4 demanding byte-identity. On the
// first failing episode it prints the scenario's JSON replay spec plus the
// violations, optionally shrinks it (--minimize) and writes the spec to
// --out, then exits 1.
//
// --replay runs exactly one scenario from its JSON spec and prints a
// deterministic digest (byte-identical across runs of the same build).
// --broken runs the canonical deliberately-defective scenario for one
// defect mode and exits 0 iff the harness catches it.
// --analytic runs the sim-vs-model differential grid from the paper's
// Section 4 shapes.
// --hetero forces every episode onto an asymmetric machine (big.LITTLE /
// clock-ladder presets, SHARE policy unless --policy overrides) — the CI
// leg that soaks the work-partitioning path.
// --adaptive forces the SPEED policy with the adaptive tuning controller on
// every episode — the CI leg that soaks the oscillation and tuning-thrash
// invariants across all three modes.
// --hetero-grid runs the sim-vs-model differential grid on asymmetric
// machines (SHARE vs the analytic optimum, count-source vs the analytic
// count-balancing penalty).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "check/episode.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"
#include "serve/scenarios.hpp"
#include "topo/presets.hpp"
#include "util/cli.hpp"

namespace {

using namespace speedbal;
using namespace speedbal::check;

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void write_spec(const std::string& path, const FuzzScenario& sc) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << sc.to_json() << "\n";
}

/// Print the failure report (replay spec + violations), shrink if asked,
/// persist the final spec if --out was given.
void report_failure(const FuzzScenario& sc, const EpisodeResult& result,
                    bool minimize_it, const std::string& out_path) {
  std::cout << "FAIL " << sc.summary() << "\n";
  std::cout << "replay spec:\n" << sc.to_json() << "\n";
  std::cout << format_violations(result.violations);
  FuzzScenario final_spec = sc;
  if (minimize_it) {
    const ShrinkResult shrunk = minimize(sc);
    if (!shrunk.invariant.empty()) {
      std::cout << "minimized (" << shrunk.steps << " steps, "
                << shrunk.attempts << " episodes) preserving \""
                << shrunk.invariant << "\":\n"
                << shrunk.scenario.to_json() << "\n";
      final_spec = shrunk.scenario;
    }
  }
  if (!out_path.empty()) {
    write_spec(out_path, final_spec);
    std::cout << "spec written to " << out_path << "\n";
  }
}

int run_replay(const std::string& path, bool minimize_it,
               const std::string& out_path) {
  const FuzzScenario sc = FuzzScenario::load_file(path);
  const EpisodeResult result = run_episode(sc);
  std::cout << "scenario " << sc.summary() << "\n";
  std::cout << result.digest();
  if (!result.failed()) return 0;
  report_failure(sc, result, minimize_it, out_path);
  return 1;
}

int run_broken(const std::string& name, const std::string& out_path) {
  const BrokenMode mode = parse_broken_mode(name);
  const FuzzScenario sc = broken_scenario(mode);
  if (!out_path.empty()) write_spec(out_path, sc);
  const EpisodeResult result = run_episode(sc);
  std::cout << "broken=" << name << " expecting \""
            << expected_violation(mode) << "\"\n";
  std::cout << result.digest();
  for (const Violation& v : result.violations)
    if (v.invariant == expected_violation(mode)) {
      std::cout << "caught: " << v.detail << "\n";
      return 0;
    }
  std::cout << "NOT CAUGHT: harness missed the injected defect\n";
  return 1;
}

int run_hetero_grid() {
  std::vector<Violation> violations;
  const std::vector<HeteroPoint> grid = check_hetero_grid(violations);
  std::printf("%-16s %5s %8s %12s %12s %12s %12s\n", "topo", "cores",
              "penalty", "pred-share", "share", "pred-count", "count");
  for (const HeteroPoint& pt : grid)
    std::printf("%-16s %5d %8.3f %12.4f %12.4f %12.4f %12.4f\n",
                pt.topo.c_str(), pt.cores, pt.penalty, pt.predicted_share_s,
                pt.share_s, pt.predicted_count_s, pt.count_s);
  if (!violations.empty()) {
    std::cout << format_violations(violations);
    return 1;
  }
  std::cout << "hetero grid within tolerance " << kAnalyticTolerance << "\n";
  return 0;
}

int run_analytic() {
  std::vector<Violation> violations;
  const std::vector<AnalyticPoint> grid = check_analytic_grid(violations);
  std::printf("%4s %4s %12s %12s %12s\n", "N", "M", "predicted", "pinned",
              "speed");
  for (const AnalyticPoint& pt : grid)
    std::printf("%4d %4d %12.4f %12.4f %12.4f\n", pt.threads, pt.cores,
                pt.predicted_speedup, pt.pinned_speedup, pt.speed_speedup);
  if (!violations.empty()) {
    std::cout << format_violations(violations);
    return 1;
  }
  std::cout << "analytic grid within tolerance " << kAnalyticTolerance
            << "\n";
  return 0;
}

int run_fuzz(const Cli& cli) {
  const int episodes = static_cast<int>(cli.get_int("episodes", 100));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int oracle_every =
      static_cast<int>(cli.get_int("jobs-oracle-every", 25));
  const double max_seconds = cli.get_double("max-seconds", 0.0);
  const bool verbose = cli.get_bool("verbose");
  const bool minimize_it = cli.get_bool("minimize");
  const std::string out_path = cli.get("out");

  const auto start = std::chrono::steady_clock::now();
  int ran = 0;
  std::int64_t migrations = 0;
  std::int64_t pulls = 0;
  int jobs_checks = 0;
  for (int e = 0; e < episodes; ++e) {
    if (max_seconds > 0.0 && wall_seconds_since(start) >= max_seconds) {
      std::cout << "wall budget of " << max_seconds << "s reached after "
                << ran << " episodes\n";
      break;
    }
    FuzzScenario sc = generate(seed + static_cast<std::uint64_t>(e));
    if (cli.get_bool("hetero")) {
      // Force an asymmetric machine (cycling the preset families) and the
      // SHARE policy, keeping every other generated dimension — this is the
      // CI soak of the work-partitioning path, not a new distribution.
      static const char* kHeteroTopos[] = {"biglittle2+2x3", "biglittle4+4x2",
                                           "ladder6"};
      sc.topo = kHeteroTopos[e % 3];
      sc.cores = std::min(sc.cores, presets::by_name(sc.topo).num_cores());
      sc.policy = Policy::Share;
    }
    if (cli.has("policy"))
      sc.policy = serve::parse_serve_policy(cli.get("policy"));
    if (cli.has("mode")) sc.mode = parse_mode(cli.get("mode"));
    // The overrides above may have moved the scenario off SPEED; the
    // generator's drawn adaptive upgrade only applies there.
    if (sc.policy != Policy::Speed) sc.adaptive = false;
    if (cli.get_bool("adaptive")) {
      // Only SPEED runs a tuning controller, so the flag pins the policy
      // too (overriding --policy; the combination is contradictory).
      sc.policy = Policy::Speed;
      sc.adaptive = true;
    }
    sc.validate();

    EpisodeResult result = run_episode(sc);
    if (!result.failed() && oracle_every > 0 && e % oracle_every == 0) {
      check_jobs_identity(sc, result.violations);
      ++jobs_checks;
    }
    ++ran;
    migrations += result.total_migrations;
    pulls += result.speed_pulls;
    if (verbose)
      std::cout << "episode " << e << " seed=" << (seed + e) << " "
                << sc.summary() << " migrations=" << result.total_migrations
                << " pulls=" << result.speed_pulls << "\n";
    if (result.failed()) {
      std::cout << "episode " << e << " seed="
                << (seed + static_cast<std::uint64_t>(e)) << " failed\n";
      report_failure(sc, result, minimize_it, out_path);
      return 1;
    }
  }
  std::cout << "OK " << ran << " episodes (seed=" << seed << ", "
            << jobs_checks << " jobs-identity checks, " << migrations
            << " migrations, " << pulls << " speed pulls, "
            << wall_seconds_since(start) << "s)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const speedbal::Cli cli(
        argc, argv,
        {"episodes", "seed", "policy", "mode", "replay", "minimize", "out",
         "broken", "jobs-oracle-every", "analytic", "adaptive", "hetero",
         "hetero-grid", "max-seconds", "verbose"});
    const auto unknown = cli.unknown();
    if (!unknown.empty())
      throw std::invalid_argument("unknown flag --" + unknown.front());
    if (cli.has("replay"))
      return run_replay(cli.get("replay"), cli.get_bool("minimize"),
                        cli.get("out"));
    if (cli.has("broken"))
      return run_broken(cli.get("broken"), cli.get("out"));
    if (cli.has("analytic")) return run_analytic();
    if (cli.has("hetero-grid")) return run_hetero_grid();
    return run_fuzz(cli);
  } catch (const std::exception& e) {
    std::cerr << "fuzzsim: " << e.what() << "\n";
    return 2;
  }
}
