// Command-line front end for the cluster-scale serving simulation:
//
//   clustersim [--nodes=16] [--pools-per-node=1] [--topo=generic4]
//              [--cores=N] [--policy=SPEED] [--workers=N] [--queue-cap=64]
//              [--dispatch=jsq] [--jsq-d=2] [--hop-us=200]
//              [--node-admission-cap=0] [--pool-dispatch=jsq] [--idle=sleep]
//              [--adaptive]
//              [--arrival=poisson] [--rate=RPS | --utilization=0.7]
//              [--service=exp] [--service-mean-us=5000] [--service-cv=1.5]
//              [--duration-s=10] [--warmup-s=1] [--seed=42]
//              [--repeats=1] [--jobs=N]
//              [--rebalance=1] [--rebalance-epoch-ms=250]
//              [--rebalance-threshold=0.5] [--rebalance-cooldown=2]
//              [--perturb=SPECS] [--perturb-node=0]
//              [--trace-out=FILE] [--report-json=FILE] [--log-level=LVL]
//
// Simulates a cluster of --nodes machines (each its own Simulator running
// the per-node balancing policy) behind a frontend that dispatches requests
// over the worker pools with --dispatch (rr / least-loaded / jsq with
// --jsq-d sampling). Every delivery and response pays a --hop-us network
// hop. A global rebalancer measures the fractional load imbalance every
// --rebalance-epoch-ms and, past --rebalance-threshold (with a cooldown),
// migrates a whole pool from the most- to the least-loaded node.
//
// --perturb applies a scripted interference timeline (DVFS, hogs, hotplug)
// to the single node named by --perturb-node — the scenario the rebalancer
// exists for. --rebalance=0 disables migration for A/B comparison.
//
// Listing flags (print one name per line and exit):
//   --list-policies --list-dispatch --list-arrivals --list-services
//
// --repeats=R merges R salted-seed replicas; --jobs=N runs them N-way
// parallel with output byte-identical for any N.

#include <cstdio>
#include <iostream>

#include "cluster/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace speedbal;
  try {
    const Cli cli(argc, argv);
    if (cli.has("list-policies")) {
      for (const Policy p : {Policy::Speed, Policy::Load, Policy::Pinned,
                             Policy::Dwrr, Policy::Ule, Policy::None})
        std::cout << to_string(p) << "\n";
      return 0;
    }
    if (cli.has("list-dispatch")) {
      for (const auto& n : cluster::cluster_dispatch_names())
        std::cout << n << "\n";
      return 0;
    }
    if (cli.has("list-arrivals")) {
      for (const auto& n : workload::arrival_kind_names()) std::cout << n << "\n";
      return 0;
    }
    if (cli.has("list-services")) {
      for (const auto& n : workload::service_kind_names()) std::cout << n << "\n";
      return 0;
    }
    if (cli.has("log-level")) {
      const auto level = parse_log_level(cli.get("log-level"));
      if (!level)
        throw std::invalid_argument(
            "unknown log level: " + cli.get("log-level") +
            " (available: trace, debug, info, warn, error)");
      set_log_level(*level);
    }
    return cluster::cluster_main(cli, "clustersim");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "clustersim: %s\n", e.what());
    return 2;
  }
}
