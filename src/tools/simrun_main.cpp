// Command-line front end for the simulator:
//
//   simrun [--topo=tigerton] [--bench=ep.C] [--threads=16] [--cores=4]
//          [--setup=SPEED-YIELD] [--repeats=5] [--seed=42]
//
// Runs the configuration and prints runtime statistics, the speedup
// against a single-core run, and migration counts.

#include <cstdio>
#include <iostream>
#include <string>

#include "core/scenarios.hpp"
#include "topo/presets.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

speedbal::scenarios::Setup parse_setup(const std::string& name) {
  using speedbal::scenarios::Setup;
  for (Setup s : {Setup::OnePerCore, Setup::Pinned, Setup::LoadYield,
                  Setup::LoadSleep, Setup::SpeedYield, Setup::SpeedSleep,
                  Setup::Dwrr, Setup::FreeBsd}) {
    if (name == to_string(s)) return s;
  }
  throw std::invalid_argument("unknown setup: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speedbal;
  try {
    const Cli cli(argc, argv);
    const auto topo = presets::by_name(cli.get("topo", "tigerton"));
    const auto prof = npb::by_name(cli.get("bench", "ep.C"));
    const int threads = static_cast<int>(cli.get_int("threads", 16));
    const int cores = static_cast<int>(cli.get_int("cores", topo.num_cores()));
    const auto setup = parse_setup(cli.get("setup", "SPEED-YIELD"));
    const int repeats = static_cast<int>(cli.get_int("repeats", 5));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));

    const double serial = scenarios::serial_runtime_s(topo, prof, threads, seed);
    const auto result =
        scenarios::run_npb(topo, prof, threads, cores, setup, repeats, seed);

    Table table({"metric", "value"});
    table.add_row({"machine", topo.name()});
    table.add_row({"benchmark", prof.full_name()});
    table.add_row({"threads", std::to_string(threads)});
    table.add_row({"cores", std::to_string(cores)});
    table.add_row({"setup", to_string(setup)});
    table.add_row({"runs", std::to_string(result.runs.size())});
    table.add_row({"mean runtime (s)", Table::num(result.mean_runtime(), 3)});
    table.add_row({"best/worst (s)", Table::num(result.best_runtime(), 3) +
                                         " / " + Table::num(result.worst_runtime(), 3)});
    table.add_row({"variation %", Table::num(result.variation_pct(), 1)});
    table.add_row({"speedup vs 1 core", Table::num(serial / result.mean_runtime(), 2)});
    table.add_row({"mean migrations", Table::num(result.mean_migrations(), 1)});
    table.print(std::cout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simrun: %s\n", e.what());
    return 2;
  }
}
