// Command-line front end for the simulator:
//
//   simrun [--topo=tigerton] [--bench=ep.C] [--threads=16] [--cores=4]
//          [--setup=SPEED-YIELD] [--repeats=5] [--seed=42] [--jobs=N]
//          [--adaptive] [--trace-out=FILE] [--report-json=FILE]
//          [--log-level=LVL] [--perturb=SPECS] [--perturb-json=FILE]
//          [--list-setups]
//
// Runs the configuration and prints runtime statistics, the speedup
// against a single-core run, and migration counts. With --trace-out the
// first repeat is recorded as a Chrome trace-event file (open in
// chrome://tracing or https://ui.perfetto.dev); --report-json writes the
// flat JSON run report (speed timeline, decision counters).
//
// --jobs=N runs the repeats N-way parallel (default: hardware
// concurrency); every replica is an independent simulator with its own
// seed, and reports/traces are byte-identical for any N.
//
// --perturb takes semicolon-separated compact event specs, e.g.
//   --perturb="at=2s dvfs core=3 scale=0.6; at=4s offline core=1"
// --perturb-json loads the same timeline from a JSON file ({"events":
// [{"at_s": 2, "kind": "dvfs", "core": 3, "scale": 0.6}, ...]}).
// --list-setups prints the available setup names, one per line, and exits.
//
// --adaptive (SPEED setups, batch or serve) wraps the speed balancer in the
// online tuning controller: a bandit over a small portfolio of Section-5
// constant-sets plus a predictor that shortens the balance interval ahead
// of a forming imbalance. Query the trajectory with obsquery --tuning.
//
// --serve[=POLICY] (or --setup=SERVE-<POLICY>) switches to the
// request-serving mode: an open-loop load generator feeds a worker pool
// balanced by POLICY and the tool reports tail-latency percentiles,
// goodput, and drops. See servesim for the full serve flag reference —
// the two front ends share it.

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "core/scenarios.hpp"
#include "hetero/setups.hpp"
#include "obs/recorder.hpp"
#include "perturb/timeline.hpp"
#include "serve/cli.hpp"
#include "topo/presets.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/table.hpp"

namespace {

constexpr speedbal::scenarios::Setup kAllSetups[] = {
    speedbal::scenarios::Setup::OnePerCore,
    speedbal::scenarios::Setup::Pinned,
    speedbal::scenarios::Setup::LoadYield,
    speedbal::scenarios::Setup::LoadSleep,
    speedbal::scenarios::Setup::SpeedYield,
    speedbal::scenarios::Setup::SpeedSleep,
    speedbal::scenarios::Setup::Dwrr,
    speedbal::scenarios::Setup::FreeBsd};

speedbal::scenarios::Setup parse_setup(const std::string& name) {
  using speedbal::scenarios::Setup;
  constexpr const auto& kAll = kAllSetups;
  std::string available;
  for (Setup s : kAll) {
    if (name == to_string(s)) return s;
    if (!available.empty()) available += ", ";
    available += to_string(s);
  }
  throw std::invalid_argument("unknown setup: " + name +
                              " (available: " + available + ")");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speedbal;
  try {
    const Cli cli(argc, argv);
    if (cli.has("list-setups")) {
      for (const auto s : kAllSetups) std::cout << to_string(s) << "\n";
      for (const auto& s : serve::serve_setup_names()) std::cout << s << "\n";
      // The asymmetric-machine presets carry their topology in the setup,
      // so each line says what machine it builds.
      for (const auto& s : hetero::hetero_setups())
        std::cout << s.name << "\t" << s.description << "\n";
      return 0;
    }
    if (cli.has("log-level")) {
      const auto level = parse_log_level(cli.get("log-level"));
      if (!level)
        throw std::invalid_argument(
            "unknown log level: " + cli.get("log-level") +
            " (available: trace, debug, info, warn, error)");
      set_log_level(*level);
    }
    if (cli.has("serve") || cli.get("setup").rfind("SERVE-", 0) == 0)
      return serve::serve_main(cli, "simrun");
    // A HETERO-* setup bundles the asymmetric machine with the policy; the
    // preset's topology wins over --topo, and one thread per core is the
    // default shape (the partition, not placement, is under test).
    const hetero::HeteroSetup* hs = hetero::find_hetero_setup(cli.get("setup"));
    const auto topo = presets::by_name(
        hs != nullptr ? hs->topo : cli.get("topo", "tigerton"));
    const auto prof = npb::by_name(cli.get("bench", "ep.C"));
    const int threads = static_cast<int>(
        cli.get_int("threads", hs != nullptr ? topo.num_cores() : 16));
    const int cores = static_cast<int>(cli.get_int("cores", topo.num_cores()));
    auto setup = scenarios::Setup::SpeedYield;
    if (hs == nullptr) {
      setup = parse_setup(cli.get("setup", "SPEED-YIELD"));
    } else {
      switch (hs->policy) {
        case hetero::HeteroPolicy::Speed:
          setup = scenarios::Setup::SpeedYield;
          break;
        case hetero::HeteroPolicy::Load:
          setup = scenarios::Setup::LoadYield;
          break;
        // SHARE rides on the pinned scenario shape: round-robin pins with
        // the partitioner layered on by the Policy::Share override below.
        case hetero::HeteroPolicy::Share:
        case hetero::HeteroPolicy::ShareCount:
        case hetero::HeteroPolicy::Pinned:
          setup = scenarios::Setup::Pinned;
          break;
      }
    }
    const std::string setup_name =
        hs != nullptr ? hs->name : std::string(to_string(setup));
    const int repeats = static_cast<int>(cli.get_int("repeats", 5));
    const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 42));
    const int jobs = resolve_jobs(static_cast<int>(cli.get_int("jobs", 0)));
    const std::string trace_out = cli.get("trace-out");
    const std::string report_json = cli.get("report-json");

    perturb::PerturbTimeline timeline;
    if (cli.has("perturb"))
      timeline = perturb::PerturbTimeline::parse_specs(cli.get("perturb"));
    if (cli.has("perturb-json")) {
      auto from_file =
          perturb::PerturbTimeline::load_json_file(cli.get("perturb-json"));
      for (const auto& ev : from_file.events()) timeline.add(ev);
    }

    const double serial = scenarios::serial_runtime_s(topo, prof, threads, seed);

    auto config =
        scenarios::npb_config(topo, prof, threads, cores, setup, repeats, seed);
    if (hs != nullptr && (hs->policy == hetero::HeteroPolicy::Share ||
                          hs->policy == hetero::HeteroPolicy::ShareCount)) {
      config.policy = Policy::Share;
      config.share.source = hs->policy == hetero::HeteroPolicy::Share
                                ? hetero::ShareParams::Source::Speed
                                : hetero::ShareParams::Source::Count;
    }
    config.jobs = jobs;
    config.perturb = timeline;
    config.adaptive.enabled = cli.has("adaptive");
    obs::RunRecorder recorder;
    const bool record = !trace_out.empty() || !report_json.empty();
    if (record) {
      recorder.set_meta("tool", "simrun");
      recorder.set_meta("machine", topo.name());
      recorder.set_meta("benchmark", prof.full_name());
      recorder.set_meta("setup", setup_name);
      recorder.set_meta("threads", std::to_string(threads));
      recorder.set_meta("cores", std::to_string(cores));
      recorder.set_meta("seed", std::to_string(seed));
      if (config.adaptive.enabled) recorder.set_meta("adaptive", "1");
      if (!timeline.empty()) {
        std::ostringstream specs;
        for (const auto& ev : timeline.events()) {
          if (specs.tellp() > 0) specs << "; ";
          specs << ev.to_spec();
        }
        recorder.set_meta("perturb", specs.str());
      }
      config.recorder = &recorder;
    }
    const auto result = run_experiment(config);

    Table table({"metric", "value"});
    table.add_row({"machine", topo.name()});
    table.add_row({"benchmark", prof.full_name()});
    table.add_row({"threads", std::to_string(threads)});
    table.add_row({"cores", std::to_string(cores)});
    table.add_row({"setup", setup_name});
    table.add_row({"runs", std::to_string(result.runs.size())});
    table.add_row({"mean runtime (s)", Table::num(result.mean_runtime(), 3)});
    table.add_row({"best/worst (s)", Table::num(result.best_runtime(), 3) +
                                         " / " + Table::num(result.worst_runtime(), 3)});
    table.add_row({"variation %", Table::num(result.variation_pct(), 1)});
    table.add_row({"speedup vs 1 core", Table::num(serial / result.mean_runtime(), 2)});
    table.add_row({"mean migrations", Table::num(result.mean_migrations(), 1)});
    {
      std::ostringstream by_cause;
      for (const auto& [cause, mean] : result.mean_migrations_by_cause()) {
        if (by_cause.tellp() > 0) by_cause << "  ";
        by_cause << to_string(cause) << ":" << Table::num(mean, 1);
      }
      table.add_row({"migrations by cause", by_cause.str()});
    }
    if (record) {
      const auto stats = recorder.timeline().global_stats();
      table.add_row({"speed samples", std::to_string(stats.samples)});
      table.add_row({"global speed mean", Table::num(stats.mean, 3)});
      table.add_row({"global speed variance", Table::num(stats.variance, 5)});
      std::ostringstream rejects;
      for (const auto& [name, count] : recorder.counters()) {
        if (name.rfind("pulls.rejected.", 0) != 0 || count == 0) continue;
        if (rejects.tellp() > 0) rejects << "  ";
        rejects << name.substr(std::string("pulls.rejected.").size()) << ":"
                << count;
      }
      table.add_row({"pulls performed",
                     std::to_string(recorder.counters()["pulls.performed"])});
      table.add_row({"pulls rejected", rejects.str()});
    }
    table.print(std::cout);

    bool io_ok = true;
    if (!trace_out.empty()) io_ok &= obs::write_trace_file(recorder, trace_out);
    if (!report_json.empty())
      io_ok &= obs::write_report_file(recorder, report_json);
    return io_ok ? 0 : 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "simrun: %s\n", e.what());
    return 2;
  }
}
