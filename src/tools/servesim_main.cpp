// Command-line front end for the request-serving subsystem:
//
//   servesim [--topo=tigerton] [--cores=4] [--policy=SPEED]
//            [--workers=8] [--queue-cap=64] [--dispatch=jsq] [--idle=sleep]
//            [--arrival=poisson] [--rate=RPS | --utilization=0.8]
//            [--service=exp] [--service-mean-us=5000] [--service-cv=1.5]
//            [--duration-s=10] [--warmup-s=1] [--seed=42]
//            [--repeats=1] [--jobs=N]
//            [--perturb=SPECS] [--perturb-json=FILE]
//            [--trace-out=FILE] [--report-json=FILE] [--log-level=LVL]
//
// Runs an open-loop load generator against a pool of worker threads whose
// placement is managed by the selected balancing policy, and reports
// tail-latency percentiles, goodput, and admission-control drops. Without
// --rate the arrival rate is derived from --utilization (offered load as a
// fraction of the managed cores' aggregate speed).
//
// --repeats=R runs R independent replicas (salted seeds) and merges their
// statistics; --jobs=N executes them N-way parallel (default: hardware
// concurrency) with output byte-identical for any N.
//
// Listing flags (print one name per line and exit):
//   --list-policies --list-dispatch --list-arrivals --list-services
//
// Bursty arrivals: --burst-factor, --burst-dwell-ms, --calm-dwell-ms.
// Diurnal arrivals: --diurnal-period-s, --diurnal-swing.
// Pareto service: --pareto-shape.

#include <cstdio>
#include <iostream>

#include "serve/cli.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace speedbal;
  try {
    const Cli cli(argc, argv);
    if (cli.has("list-policies")) {
      for (const Policy p : {Policy::Speed, Policy::Load, Policy::Pinned,
                             Policy::Dwrr, Policy::Ule, Policy::None})
        std::cout << to_string(p) << "\n";
      return 0;
    }
    if (cli.has("list-dispatch")) {
      for (const auto& n : serve::dispatch_policy_names()) std::cout << n << "\n";
      return 0;
    }
    if (cli.has("list-arrivals")) {
      for (const auto& n : workload::arrival_kind_names()) std::cout << n << "\n";
      return 0;
    }
    if (cli.has("list-services")) {
      for (const auto& n : workload::service_kind_names()) std::cout << n << "\n";
      return 0;
    }
    if (cli.has("log-level")) {
      const auto level = parse_log_level(cli.get("log-level"));
      if (!level)
        throw std::invalid_argument(
            "unknown log level: " + cli.get("log-level") +
            " (available: trace, debug, info, warn, error)");
      set_log_level(*level);
    }
    return serve::serve_main(cli, "servesim");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "servesim: %s\n", e.what());
    return 2;
  }
}
