// The paper's speedbalancer as a stand-alone tool (Section 5.2):
//
//   speedbalancer [--interval=100] [--threshold=0.9] [--cores=0-3]
//                 [--no-numa-block] [--startup-delay=100] <program> [args...]
//
// Forks the target program, discovers its threads through /proc, pins them
// round-robin over the requested cores, and balances their speed until the
// program exits. Exits with the child's status.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "native/speed_balancer.hpp"
#include "util/cli.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: speedbalancer [--interval=MS] [--threshold=T]\n"
               "                     [--cores=LIST] [--no-numa-block]\n"
               "                     [--startup-delay=MS] <program> [args...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speedbal;
  using namespace speedbal::native;

  // Split our flags from the target command: everything from the first
  // non-flag argument on belongs to the target.
  int split = 1;
  while (split < argc && std::string(argv[split]).rfind("--", 0) == 0) ++split;
  if (split >= argc) {
    usage();
    return 2;
  }
  const Cli cli(split, argv);

  NativeBalancerConfig config;
  config.interval = std::chrono::milliseconds(cli.get_int("interval", 100));
  config.threshold = cli.get_double("threshold", 0.9);
  config.block_numa = !cli.get_bool("no-numa-block", false);
  config.startup_delay =
      std::chrono::milliseconds(cli.get_int("startup-delay", 100));
  if (cli.has("cores")) config.cores = CpuSet::parse_list(cli.get("cores"));

  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    std::vector<char*> args(argv + split, argv + argc);
    args.push_back(nullptr);
    execvp(args[0], args.data());
    std::perror("execvp");
    _exit(127);
  }

  NativeSpeedBalancer balancer(child, config);
  balancer.run();  // Returns when the child exits.

  int status = 0;
  waitpid(child, &status, 0);
  std::fprintf(stderr, "speedbalancer: %lld migrations\n",
               static_cast<long long>(balancer.migrations()));
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 1;
}
