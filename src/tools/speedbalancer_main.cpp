// The paper's speedbalancer as a stand-alone tool (Section 5.2):
//
//   speedbalancer [--interval=100] [--threshold=0.9] [--cores=0-3]
//                 [--no-numa-block] [--startup-delay=100]
//                 [--trace-out=FILE] [--report-json=FILE] [--log-level=LVL]
//                 [--fail-affinity=N] [--fail-procfs=N] [--fail-errno=E]
//                 <program> [args...]
//
// Forks the target program, discovers its threads through /proc, pins them
// round-robin over the requested cores, and balances their speed until the
// program exits. Exits with the child's status. With --trace-out /
// --report-json the balancer records its speed timeline and pull decisions
// and writes a Chrome trace-event file / flat JSON run report on exit.
//
// --fail-affinity / --fail-procfs arm the fault-injection shim so the next
// N sched_setaffinity calls / procfs stat reads fail with errno E (default
// EINTR), exercising the retry and graceful-degradation paths end to end.

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "native/speed_balancer.hpp"
#include "obs/recorder.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

namespace {

void usage() {
  std::fprintf(stderr,
               "usage: speedbalancer [--interval=MS] [--threshold=T]\n"
               "                     [--cores=LIST] [--no-numa-block]\n"
               "                     [--startup-delay=MS] [--trace-out=FILE]\n"
               "                     [--report-json=FILE] [--log-level=LVL]\n"
               "                     [--fail-affinity=N] [--fail-procfs=N]\n"
               "                     [--fail-errno=E] <program> [args...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace speedbal;
  using namespace speedbal::native;

  // Split our flags from the target command: everything from the first
  // non-flag argument on belongs to the target.
  int split = 1;
  while (split < argc && std::string(argv[split]).rfind("--", 0) == 0) ++split;
  if (split >= argc) {
    usage();
    return 2;
  }
  const Cli cli(split, argv);

  if (cli.has("log-level")) {
    const auto level = parse_log_level(cli.get("log-level"));
    if (!level) {
      std::fprintf(stderr, "speedbalancer: unknown log level: %s\n",
                   cli.get("log-level").c_str());
      return 2;
    }
    set_log_level(*level);
  }

  NativeBalancerConfig config;
  config.interval = std::chrono::milliseconds(cli.get_int("interval", 100));
  config.threshold = cli.get_double("threshold", 0.9);
  config.block_numa = !cli.get_bool("no-numa-block", false);
  config.startup_delay =
      std::chrono::milliseconds(cli.get_int("startup-delay", 100));
  if (cli.has("cores")) config.cores = CpuSet::parse_list(cli.get("cores"));
  const std::string trace_out = cli.get("trace-out");
  const std::string report_json = cli.get("report-json");

  perturb::FaultInjector injector;
  const int fail_affinity = cli.get_int("fail-affinity", 0);
  const int fail_procfs = cli.get_int("fail-procfs", 0);
  const int fail_errno = cli.get_int("fail-errno", EINTR);
  if (fail_affinity > 0)
    injector.fail_next(perturb::FaultOp::SetAffinity, fail_affinity, fail_errno);
  if (fail_procfs > 0)
    injector.fail_next(perturb::FaultOp::ProcfsRead, fail_procfs, fail_errno);
  if (fail_affinity > 0 || fail_procfs > 0) config.fault_injector = &injector;

  const pid_t child = fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    std::vector<char*> args(argv + split, argv + argc);
    args.push_back(nullptr);
    execvp(args[0], args.data());
    std::perror("execvp");
    _exit(127);
  }

  NativeSpeedBalancer balancer(child, config);
  obs::RunRecorder recorder;
  const bool record = !trace_out.empty() || !report_json.empty();
  if (record) {
    recorder.set_meta("tool", "speedbalancer");
    std::string target;
    for (int i = split; i < argc; ++i) {
      if (!target.empty()) target += ' ';
      target += argv[i];
    }
    recorder.set_meta("target", target);
    recorder.set_meta("interval_ms", std::to_string(config.interval.count()));
    recorder.set_meta("threshold", std::to_string(config.threshold));
    balancer.set_recorder(&recorder);
  }
  balancer.run();  // Returns when the child exits.

  int status = 0;
  waitpid(child, &status, 0);
  std::fprintf(stderr, "speedbalancer: %lld migrations\n",
               static_cast<long long>(balancer.migrations()));
  bool io_ok = true;
  if (!trace_out.empty()) io_ok &= obs::write_trace_file(recorder, trace_out);
  if (!report_json.empty())
    io_ok &= obs::write_report_file(recorder, report_json);
  if (!io_ok) return 2;
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  return 1;
}
