#pragma once

#include <array>
#include <cstdint>
#include <mutex>

namespace speedbal::perturb {

/// Operations the native layer exposes to fault injection.
enum class FaultOp {
  SetAffinity,  ///< sched_setaffinity on a managed thread.
  ProcfsRead,   ///< One /proc/<pid>/task/<tid>/stat read.
};

inline constexpr int kNumFaultOps = 2;

const char* to_string(FaultOp op);

/// Deterministic failure-injection shim for the native balancer: arms a
/// number of consecutive failures per operation, each simulating a given
/// errno. The instrumented wrappers in native/affinity.cpp and
/// native/procfs.cpp consult `next_error` before every real syscall attempt
/// and treat a nonzero return exactly like the syscall failing with that
/// errno — so retry/backoff/degradation paths are exercised without any
/// kernel cooperation. Thread-safe: the balancer worker and the arming
/// thread (a test, or a timeline player) may race freely.
class FaultInjector {
 public:
  /// Arm `count` consecutive failures of `op`, each reporting `err`.
  /// Repeated calls accumulate onto the pending count (the new errno wins).
  void fail_next(FaultOp op, int count, int err);

  /// Consume one armed failure: returns the errno to simulate, or 0 to let
  /// the real operation proceed.
  int next_error(FaultOp op);

  /// Total failures injected so far for `op` (for tests/telemetry).
  std::int64_t injected(FaultOp op) const;
  /// Failures still armed for `op`.
  int pending(FaultOp op) const;

 private:
  struct State {
    int pending = 0;
    int err = 0;
    std::int64_t injected = 0;
  };

  mutable std::mutex mu_;
  std::array<State, kNumFaultOps> ops_{};
};

}  // namespace speedbal::perturb
