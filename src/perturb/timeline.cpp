#include "perturb/timeline.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace speedbal::perturb {

const char* to_string(PerturbKind k) {
  switch (k) {
    case PerturbKind::Dvfs: return "dvfs";
    case PerturbKind::CoreOffline: return "offline";
    case PerturbKind::CoreOnline: return "online";
    case PerturbKind::HogStart: return "hog-start";
    case PerturbKind::HogStop: return "hog-stop";
    case PerturbKind::WorkSpike: return "spike";
    case PerturbKind::FailAffinity: return "fail-affinity";
    case PerturbKind::FailProcfs: return "fail-procfs";
    case PerturbKind::DvfsRamp: return "dvfs-ramp";
  }
  return "?";
}

namespace {

bool parse_kind(std::string_view word, PerturbKind& out) {
  for (int k = 0; k < kNumPerturbKinds; ++k) {
    const auto kind = static_cast<PerturbKind>(k);
    if (word == to_string(kind)) {
      out = kind;
      return true;
    }
  }
  return false;
}

std::string all_kind_names() {
  std::string out;
  for (int k = 0; k < kNumPerturbKinds; ++k) {
    if (!out.empty()) out += ", ";
    out += to_string(static_cast<PerturbKind>(k));
  }
  return out;
}

/// "250ms", "2s", "1500us", bare number = microseconds.
SimTime parse_time(std::string_view text, std::string_view what) {
  std::string s(text);
  double mult = 1.0;
  if (s.size() >= 2 && s.substr(s.size() - 2) == "us") {
    s.resize(s.size() - 2);
  } else if (s.size() >= 2 && s.substr(s.size() - 2) == "ms") {
    mult = static_cast<double>(kMsec);
    s.resize(s.size() - 2);
  } else if (!s.empty() && s.back() == 's') {
    mult = static_cast<double>(kSec);
    s.resize(s.size() - 1);
  }
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || v < 0.0)
    throw std::invalid_argument("bad " + std::string(what) + " time: '" +
                                std::string(text) + "'");
  return static_cast<SimTime>(v * mult);
}

double parse_number(std::string_view text, std::string_view what) {
  std::string s(text);
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size())
    throw std::invalid_argument("bad " + std::string(what) + " value: '" +
                                std::string(text) + "'");
  return v;
}

}  // namespace

std::string PerturbEvent::to_spec() const {
  std::ostringstream os;
  os << "at=" << at << "us " << perturb::to_string(kind);
  if (core >= 0) os << " core=" << core;
  switch (kind) {
    case PerturbKind::Dvfs:
      os << " scale=" << scale;
      break;
    case PerturbKind::DvfsRamp:
      os << " scale=" << scale << " over=" << ramp_over
         << "us steps=" << ramp_steps;
      break;
    case PerturbKind::WorkSpike:
      os << " work=" << static_cast<std::int64_t>(work_us) << "us";
      break;
    case PerturbKind::FailAffinity:
    case PerturbKind::FailProcfs:
      os << " count=" << count << " err=" << err;
      break;
    default:
      break;
  }
  return os.str();
}

void PerturbTimeline::add(PerturbEvent ev) {
  // Insertion sort keeps ties in insertion order (stable replay).
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), ev,
      [](const PerturbEvent& a, const PerturbEvent& b) { return a.at < b.at; });
  events_.insert(pos, ev);
}

PerturbEvent PerturbTimeline::parse_spec(std::string_view spec) {
  PerturbEvent ev;
  bool have_kind = false;
  std::istringstream tokens{std::string(spec)};
  std::string tok;
  while (tokens >> tok) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos) {
      if (have_kind)
        throw std::invalid_argument("perturb spec has two event kinds: '" +
                                    tok + "' in '" + std::string(spec) + "'");
      if (!parse_kind(tok, ev.kind))
        throw std::invalid_argument("unknown perturbation '" + tok +
                                    "' (available: " + all_kind_names() + ")");
      have_kind = true;
      continue;
    }
    const std::string key = tok.substr(0, eq);
    const std::string value = tok.substr(eq + 1);
    if (key == "at") {
      ev.at = parse_time(value, "at");
    } else if (key == "core") {
      ev.core = static_cast<int>(parse_number(value, "core"));
    } else if (key == "scale") {
      ev.scale = parse_number(value, "scale");
      if (ev.scale <= 0.0)
        throw std::invalid_argument("perturb scale must be > 0, got '" +
                                    value + "'");
    } else if (key == "over") {
      ev.ramp_over = parse_time(value, "over");
    } else if (key == "steps") {
      ev.ramp_steps = static_cast<int>(parse_number(value, "steps"));
      if (ev.ramp_steps < 1)
        throw std::invalid_argument("perturb steps must be >= 1, got '" +
                                    value + "'");
    } else if (key == "work") {
      ev.work_us = static_cast<double>(parse_time(value, "work"));
    } else if (key == "count") {
      ev.count = static_cast<int>(parse_number(value, "count"));
    } else if (key == "err") {
      ev.err = static_cast<int>(parse_number(value, "err"));
    } else {
      throw std::invalid_argument("unknown perturb field '" + key + "' in '" +
                                  std::string(spec) + "'");
    }
  }
  if (!have_kind)
    throw std::invalid_argument("perturb spec missing an event kind in '" +
                                std::string(spec) +
                                "' (available: " + all_kind_names() + ")");
  return ev;
}

PerturbTimeline PerturbTimeline::parse_specs(std::string_view specs) {
  PerturbTimeline tl;
  std::size_t start = 0;
  while (start <= specs.size()) {
    std::size_t end = specs.find(';', start);
    if (end == std::string_view::npos) end = specs.size();
    const std::string_view one = specs.substr(start, end - start);
    if (one.find_first_not_of(" \t") != std::string_view::npos)
      tl.add(parse_spec(one));
    start = end + 1;
  }
  return tl;
}

PerturbTimeline PerturbTimeline::parse_json(std::string_view text) {
  const JsonValue doc = JsonValue::parse(text);
  const JsonValue* events = doc.find("events");
  if (events == nullptr)
    throw std::invalid_argument("perturb JSON: missing top-level \"events\"");
  PerturbTimeline tl;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = (*events)[i];
    PerturbEvent ev;
    const std::string& kind = e.at("kind").as_string();
    if (!parse_kind(kind, ev.kind))
      throw std::invalid_argument("perturb JSON: unknown kind '" + kind +
                                  "' (available: " + all_kind_names() + ")");
    int time_keys = 0;
    if (const JsonValue* v = e.find("at_us")) {
      ev.at = v->as_int();
      ++time_keys;
    }
    if (const JsonValue* v = e.find("at_ms")) {
      ev.at = static_cast<SimTime>(v->as_number() * kMsec);
      ++time_keys;
    }
    if (const JsonValue* v = e.find("at_s")) {
      ev.at = static_cast<SimTime>(v->as_number() * kSec);
      ++time_keys;
    }
    if (time_keys != 1)
      throw std::invalid_argument(
          "perturb JSON: each event needs exactly one of at_us/at_ms/at_s");
    if (const JsonValue* v = e.find("core"))
      ev.core = static_cast<int>(v->as_int());
    if (const JsonValue* v = e.find("scale")) {
      ev.scale = v->as_number();
      if (ev.scale <= 0.0)
        throw std::invalid_argument("perturb JSON: scale must be > 0");
    }
    int over_keys = 0;
    if (const JsonValue* v = e.find("over_us")) {
      ev.ramp_over = v->as_int();
      ++over_keys;
    }
    if (const JsonValue* v = e.find("over_ms")) {
      ev.ramp_over = static_cast<SimTime>(v->as_number() * kMsec);
      ++over_keys;
    }
    if (const JsonValue* v = e.find("over_s")) {
      ev.ramp_over = static_cast<SimTime>(v->as_number() * kSec);
      ++over_keys;
    }
    if (over_keys > 1)
      throw std::invalid_argument(
          "perturb JSON: at most one of over_us/over_ms/over_s");
    if (const JsonValue* v = e.find("steps")) {
      ev.ramp_steps = static_cast<int>(v->as_int());
      if (ev.ramp_steps < 1)
        throw std::invalid_argument("perturb JSON: steps must be >= 1");
    }
    if (const JsonValue* v = e.find("work_us")) ev.work_us = v->as_number();
    if (const JsonValue* v = e.find("count"))
      ev.count = static_cast<int>(v->as_int());
    if (const JsonValue* v = e.find("err")) ev.err = static_cast<int>(v->as_int());
    tl.add(ev);
  }
  return tl;
}

PerturbTimeline PerturbTimeline::load_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("cannot open perturb timeline file '" + path +
                                "'");
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_json(ss.str());
}

}  // namespace speedbal::perturb
