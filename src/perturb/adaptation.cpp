#include "perturb/adaptation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace speedbal::perturb {

AdaptationResult analyze_step_response(const std::vector<double>& series,
                                       SimTime window, SimTime perturb_time,
                                       double tolerance, int stable_windows) {
  if (series.empty())
    throw std::invalid_argument("analyze_step_response: empty series");
  if (window <= 0)
    throw std::invalid_argument("analyze_step_response: window must be > 0");
  const SimTime series_end = static_cast<SimTime>(series.size()) * window;
  if (perturb_time < 0 || perturb_time >= series_end)
    throw std::invalid_argument(
        "analyze_step_response: perturbation outside the sampled range");

  // First window fully after the perturbation (a window straddling the step
  // mixes pre- and post-step behavior and cannot count as converged).
  const std::size_t first =
      static_cast<std::size_t>((perturb_time + window - 1) / window);
  const std::size_t n = series.size();

  AdaptationResult out;
  out.windows_analyzed = static_cast<int>(n - first);
  if (first >= n) {
    // The step landed in the final window; nothing measurable follows.
    out.windows_analyzed = 0;
    return out;
  }

  // Steady state: mean of the last quarter (at least one window) of the
  // post-step series. Using the tail rather than a supplied constant keeps
  // the analysis policy-agnostic — each policy converges to its own level.
  const std::size_t post = n - first;
  const std::size_t tail = std::max<std::size_t>(post / 4, 1);
  double steady = 0.0;
  for (std::size_t i = n - tail; i < n; ++i) steady += series[i];
  steady /= static_cast<double>(tail);
  out.steady_value = steady;

  const double band = tolerance * std::max(std::abs(steady), 1e-12);
  const auto settled = [&](std::size_t i) {
    return std::abs(series[i] - steady) <= band;
  };

  // Find the earliest window from which the series stays within the band
  // for `stable_windows` consecutive windows AND never leaves it again
  // (a dip after apparent convergence resets the clock).
  std::size_t settle_at = n;  // n = never.
  for (std::size_t i = n; i-- > first;) {
    if (settled(i))
      settle_at = i;
    else
      break;
  }
  const std::size_t run_len = n - settle_at;
  if (settle_at < n && run_len >= static_cast<std::size_t>(stable_windows)) {
    out.converged = true;
    const SimTime settle_time = static_cast<SimTime>(settle_at) * window;
    out.latency = std::max<SimTime>(settle_time - perturb_time, 0);
  }

  // Imbalance integral over everything after the perturbation, clipping the
  // straddling window to its post-step part.
  for (std::size_t i =
           static_cast<std::size_t>(perturb_time / window);
       i < n; ++i) {
    const SimTime lo = std::max<SimTime>(
        static_cast<SimTime>(i) * window, perturb_time);
    const SimTime hi = static_cast<SimTime>(i + 1) * window;
    out.imbalance_integral +=
        std::abs(series[i] - steady) * to_sec(hi - lo);
  }
  return out;
}

}  // namespace speedbal::perturb
