#include "perturb/fault_injection.hpp"

namespace speedbal::perturb {

const char* to_string(FaultOp op) {
  switch (op) {
    case FaultOp::SetAffinity: return "set-affinity";
    case FaultOp::ProcfsRead: return "procfs-read";
  }
  return "?";
}

void FaultInjector::fail_next(FaultOp op, int count, int err) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& s = ops_[static_cast<std::size_t>(op)];
  s.pending += count;
  s.err = err;
}

int FaultInjector::next_error(FaultOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& s = ops_[static_cast<std::size_t>(op)];
  if (s.pending <= 0) return 0;
  --s.pending;
  ++s.injected;
  return s.err;
}

std::int64_t FaultInjector::injected(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_[static_cast<std::size_t>(op)].injected;
}

int FaultInjector::pending(FaultOp op) const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_[static_cast<std::size_t>(op)].pending;
}

}  // namespace speedbal::perturb
