#include "perturb/sim_driver.hpp"

#include <string>

#include "util/log.hpp"

namespace speedbal::perturb {

SimPerturbDriver::SimPerturbDriver(Simulator& sim, PerturbTimeline timeline)
    : sim_(sim), timeline_(std::move(timeline)) {}

void SimPerturbDriver::arm() {
  for (const PerturbEvent& ev : timeline_.events()) {
    const PerturbEvent copy = ev;
    sim_.schedule_at(std::max(ev.at, sim_.now()), [this, copy] { apply(copy); });
  }
}

void SimPerturbDriver::apply(const PerturbEvent& ev) {
  const bool ok = apply_one(ev);
  if (ok)
    ++applied_;
  else
    ++skipped_;
  SB_LOG(Debug) << "perturb: " << (ok ? "applied " : "skipped ") << ev.to_spec();
  emit_trace(ev, ok);
}

bool SimPerturbDriver::apply_one(const PerturbEvent& ev) {
  const bool core_valid = ev.core >= 0 && ev.core < sim_.num_cores();
  switch (ev.kind) {
    case PerturbKind::Dvfs:
      if (!core_valid) return false;
      sim_.set_clock_scale(ev.core, ev.scale);
      return true;
    case PerturbKind::DvfsRamp: {
      if (!core_valid) return false;
      const double from = sim_.topo().core(ev.core).clock_scale;
      if (ev.ramp_over <= 0) {  // Degenerate ramp = step.
        sim_.set_clock_scale(ev.core, ev.scale);
        return true;
      }
      // Linear interpolation in ramp_steps discrete sets, the last landing
      // exactly on the target so ramps compose with later steps/ramps.
      const SimTime start = sim_.now();
      for (int k = 1; k <= ev.ramp_steps; ++k) {
        const double frac =
            static_cast<double>(k) / static_cast<double>(ev.ramp_steps);
        const double scale = from + (ev.scale - from) * frac;
        const SimTime when =
            start + static_cast<SimTime>(
                        static_cast<double>(ev.ramp_over) * frac);
        const int core = ev.core;
        sim_.schedule_at(when, [this, core, scale] {
          if (core < sim_.num_cores()) sim_.set_clock_scale(core, scale);
        });
      }
      return true;
    }
    case PerturbKind::CoreOffline:
      if (!core_valid || sim_.num_online_cores() <= 1 ||
          !sim_.core_online(ev.core))
        return false;
      sim_.set_core_online(ev.core, false);
      return true;
    case PerturbKind::CoreOnline:
      if (!core_valid || sim_.core_online(ev.core)) return false;
      sim_.set_core_online(ev.core, true);
      return true;
    case PerturbKind::HogStart: {
      if (ev.core >= 0 && !core_valid) return false;
      if (ev.core >= 0 && !sim_.core_online(ev.core)) return false;
      const int key = ev.core >= 0 ? ev.core : -1;
      if (hogs_.count(key) > 0) return false;  // Already hogging there.
      auto hog = std::make_unique<CpuHog>(
          sim_, key >= 0 ? "cpu-hog.c" + std::to_string(key) : "cpu-hog");
      hog->launch(key >= 0 ? std::optional<CoreId>(key) : std::nullopt);
      hogs_[key] = std::move(hog);
      return true;
    }
    case PerturbKind::HogStop: {
      const int key = ev.core >= 0 ? ev.core : -1;
      const auto it = hogs_.find(key);
      if (it == hogs_.end()) return false;
      it->second->stop();
      hogs_.erase(it);
      return true;
    }
    case PerturbKind::WorkSpike: {
      if (ev.work_us <= 0.0) return false;
      if (ev.core >= 0 && (!core_valid || !sim_.core_online(ev.core)))
        return false;
      TaskSpec ts;
      ts.name = "spike" + std::to_string(spike_seq_++);
      Task& t = sim_.create_task(ts);  // No client: finishes with its work.
      sim_.assign_work(t, ev.work_us);
      if (ev.core >= 0)
        sim_.start_task_on(t, ev.core, 1ULL << ev.core);
      else
        sim_.start_task(t);
      return true;
    }
    case PerturbKind::FailAffinity:
      if (injector_ == nullptr) return false;
      injector_->fail_next(FaultOp::SetAffinity, ev.count, ev.err);
      return true;
    case PerturbKind::FailProcfs:
      if (injector_ == nullptr) return false;
      injector_->fail_next(FaultOp::ProcfsRead, ev.count, ev.err);
      return true;
  }
  return false;
}

void SimPerturbDriver::emit_trace(const PerturbEvent& ev, bool applied) {
  if (recorder_ == nullptr) return;
  recorder_->incr(applied ? "perturb.applied" : "perturb.skipped");
  recorder_->trace().instant(
      sim_.now(), ev.core >= 0 ? ev.core : 0,
      std::string("perturb:") + to_string(ev.kind), "perturb",
      {{"core", static_cast<double>(ev.core)},
       {"scale", ev.scale},
       {"work_us", ev.work_us}},
      {{"applied", applied ? "yes" : "no"}, {"spec", ev.to_spec()}});
}

}  // namespace speedbal::perturb
