#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace speedbal::perturb {

/// The perturbation taxonomy: everything the paper's dynamic-interference
/// experiments (Figs. 5/6, the asymmetric-clock runs) do to a machine
/// mid-run, plus the failure modes a real user-level balancer faces on a
/// machine that changes under it (hotplug, throttling, transient syscall /
/// procfs failures).
enum class PerturbKind {
  Dvfs,          ///< Clock change on one core (thermal throttling, turbo).
  CoreOffline,   ///< Hotplug: core leaves; its run queue is drained.
  CoreOnline,    ///< Hotplug: core returns to service.
  HogStart,      ///< An unrelated cpu-hog starts (pinned when core >= 0).
  HogStop,       ///< The hog started with the same `core` key exits.
  WorkSpike,     ///< A one-shot task with `work_us` of work appears.
  FailAffinity,  ///< Native shim: fail the next N sched_setaffinity calls.
  FailProcfs,    ///< Native shim: fail the next N procfs stat reads.
  DvfsRamp,      ///< Linear clock ramp to `scale` over `ramp_over`
                 ///< (thermal throttling / frequency-ladder curves).
};

inline constexpr int kNumPerturbKinds = 9;

const char* to_string(PerturbKind k);

/// One scheduled perturbation. Which fields matter depends on `kind`:
/// `core` targets Dvfs / DvfsRamp / CoreOffline / CoreOnline / HogStart
/// (-1 = let fork placement choose); `scale` is the Dvfs / DvfsRamp target
/// clock multiplier; `ramp_over` / `ramp_steps` the DvfsRamp duration and
/// number of discrete interpolation steps; `work_us` the WorkSpike extra
/// work per thread; `count` / `err` the number of injected failures and the
/// errno they simulate (FailAffinity / FailProcfs).
struct PerturbEvent {
  SimTime at = 0;
  PerturbKind kind = PerturbKind::Dvfs;
  int core = -1;
  double scale = 1.0;
  double work_us = 0.0;
  int count = 1;
  int err = 4;  // EINTR.
  SimTime ramp_over = 0;
  int ramp_steps = 10;

  /// Canonical compact-spec rendering ("at=2s dvfs core=3 scale=0.6");
  /// re-parses to an identical event (used by the determinism tests).
  std::string to_spec() const;
};

/// A deterministic, seed-free schedule of perturbations shared by the
/// simulator (applied via Simulator::schedule_at) and the native balancer
/// (applied by wall clock through the injection shim). Events are kept
/// sorted by time; ties preserve insertion order, so identical timelines
/// replay byte-identically.
class PerturbTimeline {
 public:
  void add(PerturbEvent ev);

  const std::vector<PerturbEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Parse one compact CLI spec: whitespace-separated tokens, one bare kind
  /// word (dvfs, dvfs-ramp, offline, online, hog-start, hog-stop, spike,
  /// fail-affinity, fail-procfs) plus key=value fields (at=TIME, core=N,
  /// scale=X, over=TIME, steps=N, work=TIME, count=N, err=N). TIME accepts
  /// us/ms/s suffixes ("250ms", "2s", bare = microseconds). Throws
  /// std::invalid_argument with a message naming the offending token on
  /// malformed input.
  static PerturbEvent parse_spec(std::string_view spec);

  /// Parse a semicolon-separated list of compact specs
  /// ("at=2s dvfs core=3 scale=0.6; at=4s offline core=1").
  static PerturbTimeline parse_specs(std::string_view specs);

  /// Parse the JSON file format:
  ///   {"events": [{"at_us": 2000000, "kind": "dvfs", "core": 3,
  ///                "scale": 0.6}, ...]}
  /// Times may be given as at_us, at_ms, or at_s (exactly one). Throws
  /// std::invalid_argument / std::runtime_error on malformed input.
  static PerturbTimeline parse_json(std::string_view text);

  /// Read and parse a JSON timeline file; throws on I/O or parse errors.
  static PerturbTimeline load_json_file(const std::string& path);

 private:
  std::vector<PerturbEvent> events_;
};

}  // namespace speedbal::perturb
