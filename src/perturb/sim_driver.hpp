#pragma once

#include <map>
#include <memory>

#include "app/multiprog.hpp"
#include "obs/recorder.hpp"
#include "perturb/fault_injection.hpp"
#include "perturb/timeline.hpp"
#include "sim/simulator.hpp"

namespace speedbal::perturb {

/// Plays a PerturbTimeline against a Simulator: every event becomes a
/// scheduled callback that mutates the machine (DVFS, hotplug), the
/// competing workload (cpu-hogs, work spikes), or an attached FaultInjector
/// (the fail-* events, meaningful when a native-style component consults
/// the injector). When a recorder is attached each applied perturbation
/// emits an Instant trace event and bumps "perturb.applied" /
/// "perturb.skipped" counters, so traces show the step and the balancer's
/// response on the same clock.
class SimPerturbDriver {
 public:
  SimPerturbDriver(Simulator& sim, PerturbTimeline timeline);

  SimPerturbDriver(const SimPerturbDriver&) = delete;
  SimPerturbDriver& operator=(const SimPerturbDriver&) = delete;

  /// Route fail-affinity / fail-procfs events to this injector (optional;
  /// without one those events are counted as skipped).
  void set_fault_injector(FaultInjector* inj) { injector_ = inj; }
  void set_recorder(obs::RunRecorder* rec) { recorder_ = rec; }

  /// Schedule every timeline event on the simulator. Call once, before the
  /// run; events already in the past (relative to sim.now()) fire on the
  /// next step, preserving order.
  void arm();

  /// Events applied / skipped so far. An event is skipped rather than
  /// fatal when it cannot apply to the current machine state — offlining
  /// the last core, stopping a hog that is not running, a fail-* event
  /// with no injector attached, or an out-of-range core id.
  int applied() const { return applied_; }
  int skipped() const { return skipped_; }

 private:
  void apply(const PerturbEvent& ev);
  bool apply_one(const PerturbEvent& ev);
  void emit_trace(const PerturbEvent& ev, bool applied);

  Simulator& sim_;
  PerturbTimeline timeline_;
  FaultInjector* injector_ = nullptr;
  obs::RunRecorder* recorder_ = nullptr;
  /// Hogs started by HogStart, keyed by pin core (-1 = unpinned).
  std::map<int, std::unique_ptr<CpuHog>> hogs_;
  int applied_ = 0;
  int skipped_ = 0;
  int spike_seq_ = 0;
};

}  // namespace speedbal::perturb
