#pragma once

#include <vector>

#include "util/time.hpp"

namespace speedbal::perturb {

/// Outcome of a step-response analysis: how a time-series (windowed program
/// speed, in practice) behaved after a perturbation at a known instant.
/// Boulmier et al. argue re-convergence time after a perturbation is the
/// balancer metric that matters; this quantifies it.
struct AdaptationResult {
  /// Whether the series settled into the post-step steady band at all.
  bool converged = false;
  /// Time from the perturbation to the start of the first window run that
  /// stays within tolerance of the steady value (0 when already settled).
  SimTime latency = 0;
  /// Integral of |value - steady| dt over [perturbation, end) — the total
  /// speed lost (or spuriously gained) while re-converging. Units:
  /// value x seconds.
  double imbalance_integral = 0.0;
  /// The post-perturbation steady-state value the series converged to
  /// (mean of the final quarter of post-step windows).
  double steady_value = 0.0;
  int windows_analyzed = 0;
};

/// Analyze the step response of `series`, a time-series sampled on fixed
/// `window`-length intervals starting at t=0 (series[i] covers
/// [i*window, (i+1)*window)). The step lands at `perturb_time`. The steady
/// value is estimated from the final quarter of the post-step windows;
/// convergence requires `stable_windows` consecutive windows within
/// `tolerance` (relative) of it, and the run must stay converged through
/// the end of the series. Throws std::invalid_argument on an empty series,
/// a non-positive window, or a perturbation outside the sampled range.
AdaptationResult analyze_step_response(const std::vector<double>& series,
                                       SimTime window, SimTime perturb_time,
                                       double tolerance = 0.05,
                                       int stable_windows = 3);

}  // namespace speedbal::perturb
