#pragma once

#include <string>
#include <vector>

namespace speedbal {

/// Index of a logical CPU (a hardware execution context). SMT siblings are
/// separate CoreIds that share a physical core.
using CoreId = int;

/// Static attributes of one logical CPU.
struct CoreInfo {
  CoreId id = 0;
  int numa_node = 0;    ///< NUMA node (memory locality domain).
  int socket = 0;       ///< Physical package.
  int cache_group = 0;  ///< Last-level-cache sharing group (global index).
  CoreId smt_sibling = -1;  ///< The other hardware context, -1 if none.
  double clock_scale = 1.0; ///< Relative compute speed (1.0 = nominal).
};

/// Shape of a machine to construct. All counts are per enclosing level;
/// cache groups partition each socket. clock_scales, when non-empty, gives a
/// per-logical-CPU speed override (length must equal the total CPU count).
struct TopologySpec {
  std::string name = "generic";
  int numa_nodes = 1;
  int sockets_per_node = 1;
  int cores_per_socket = 1;
  int cores_per_cache_group = 0;  ///< 0 means the whole socket shares cache.
  int smt_per_core = 1;           ///< 1 (no SMT) or 2.
  std::vector<double> clock_scales;
};

/// Description of a multicore machine: the hardware-resource sharing
/// relationships the schedulers and balancers consult. Mirrors what Linux
/// learns from /sys/devices/system/cpu (Section 5.2 of the paper). The
/// sharing structure is immutable after build; only per-core clock scales
/// may change at runtime (DVFS, see set_clock_scale).
class Topology {
 public:
  /// Validates and builds the topology; throws std::invalid_argument on a
  /// malformed spec.
  static Topology build(const TopologySpec& spec);

  const std::string& name() const { return name_; }
  int num_cores() const { return static_cast<int>(cores_.size()); }
  int num_numa_nodes() const { return numa_nodes_; }
  int num_sockets() const { return sockets_; }
  int num_cache_groups() const { return cache_groups_; }
  bool has_smt() const { return smt_; }

  const CoreInfo& core(CoreId id) const { return cores_.at(static_cast<std::size_t>(id)); }
  const std::vector<CoreInfo>& cores() const { return cores_; }

  /// DVFS: change one core's relative clock speed mid-run. Callers that
  /// cache speeds (the Simulator) must refresh them afterwards. Throws
  /// std::invalid_argument unless scale > 0.
  void set_clock_scale(CoreId id, double scale);

  bool same_numa(CoreId a, CoreId b) const;
  bool same_socket(CoreId a, CoreId b) const;
  bool same_cache(CoreId a, CoreId b) const;

  std::vector<CoreId> cores_in_numa(int node) const;
  std::vector<CoreId> cores_in_socket(int socket) const;
  std::vector<CoreId> cores_in_cache_group(int group) const;

 private:
  std::string name_;
  std::vector<CoreInfo> cores_;
  int numa_nodes_ = 1;
  int sockets_ = 1;
  int cache_groups_ = 1;
  bool smt_ = false;
};

}  // namespace speedbal
