#include "topo/topology.hpp"

#include <stdexcept>

namespace speedbal {

Topology Topology::build(const TopologySpec& spec) {
  if (spec.numa_nodes < 1 || spec.sockets_per_node < 1 ||
      spec.cores_per_socket < 1)
    throw std::invalid_argument("topology: counts must be >= 1");
  if (spec.smt_per_core != 1 && spec.smt_per_core != 2)
    throw std::invalid_argument("topology: smt_per_core must be 1 or 2");
  const int group_size =
      spec.cores_per_cache_group > 0 ? spec.cores_per_cache_group
                                     : spec.cores_per_socket;
  if (spec.cores_per_socket % group_size != 0)
    throw std::invalid_argument(
        "topology: cache group size must divide cores_per_socket");

  Topology t;
  t.name_ = spec.name;
  t.numa_nodes_ = spec.numa_nodes;
  t.sockets_ = spec.numa_nodes * spec.sockets_per_node;
  t.smt_ = spec.smt_per_core == 2;

  const int total = spec.numa_nodes * spec.sockets_per_node *
                    spec.cores_per_socket * spec.smt_per_core;
  if (!spec.clock_scales.empty() &&
      static_cast<int>(spec.clock_scales.size()) != total)
    throw std::invalid_argument(
        "topology: clock_scales length must equal total logical CPU count");

  int cache_group = 0;
  CoreId id = 0;
  for (int node = 0; node < spec.numa_nodes; ++node) {
    for (int s = 0; s < spec.sockets_per_node; ++s) {
      const int socket = node * spec.sockets_per_node + s;
      for (int c = 0; c < spec.cores_per_socket; ++c) {
        const int group = cache_group + c / group_size;
        for (int h = 0; h < spec.smt_per_core; ++h) {
          CoreInfo info;
          info.id = id;
          info.numa_node = node;
          info.socket = socket;
          info.cache_group = group;
          info.clock_scale = spec.clock_scales.empty()
                                 ? 1.0
                                 : spec.clock_scales[static_cast<std::size_t>(id)];
          if (spec.smt_per_core == 2) info.smt_sibling = (h == 0) ? id + 1 : id - 1;
          t.cores_.push_back(info);
          ++id;
        }
      }
      cache_group += spec.cores_per_socket / group_size;
    }
  }
  t.cache_groups_ = cache_group;
  return t;
}

bool Topology::same_numa(CoreId a, CoreId b) const {
  return core(a).numa_node == core(b).numa_node;
}
bool Topology::same_socket(CoreId a, CoreId b) const {
  return core(a).socket == core(b).socket;
}
bool Topology::same_cache(CoreId a, CoreId b) const {
  return core(a).cache_group == core(b).cache_group;
}

std::vector<CoreId> Topology::cores_in_numa(int node) const {
  std::vector<CoreId> out;
  for (const auto& c : cores_)
    if (c.numa_node == node) out.push_back(c.id);
  return out;
}

std::vector<CoreId> Topology::cores_in_socket(int socket) const {
  std::vector<CoreId> out;
  for (const auto& c : cores_)
    if (c.socket == socket) out.push_back(c.id);
  return out;
}

void Topology::set_clock_scale(CoreId id, double scale) {
  if (!(scale > 0.0))
    throw std::invalid_argument("set_clock_scale: scale must be > 0");
  cores_.at(static_cast<std::size_t>(id)).clock_scale = scale;
}

std::vector<CoreId> Topology::cores_in_cache_group(int group) const {
  std::vector<CoreId> out;
  for (const auto& c : cores_)
    if (c.cache_group == group) out.push_back(c.id);
  return out;
}

}  // namespace speedbal
