#include "topo/presets.hpp"

#include <charconv>
#include <stdexcept>
#include <string>

namespace speedbal::presets {

Topology tigerton() {
  TopologySpec spec;
  spec.name = "tigerton";
  spec.numa_nodes = 1;
  spec.sockets_per_node = 4;
  spec.cores_per_socket = 4;
  spec.cores_per_cache_group = 2;  // L2 shared per pair of cores.
  return Topology::build(spec);
}

Topology barcelona() {
  TopologySpec spec;
  spec.name = "barcelona";
  spec.numa_nodes = 4;
  spec.sockets_per_node = 1;
  spec.cores_per_socket = 4;
  spec.cores_per_cache_group = 4;  // L3 shared per socket.
  return Topology::build(spec);
}

Topology nehalem() {
  TopologySpec spec;
  spec.name = "nehalem";
  spec.numa_nodes = 2;
  spec.sockets_per_node = 1;
  spec.cores_per_socket = 4;
  spec.cores_per_cache_group = 4;
  spec.smt_per_core = 2;
  return Topology::build(spec);
}

Topology generic(int cores) {
  TopologySpec spec;
  spec.name = "generic" + std::to_string(cores);
  spec.cores_per_socket = cores;
  return Topology::build(spec);
}

Topology dual_socket(int cores_per_socket) {
  TopologySpec spec;
  spec.name = "dual" + std::to_string(cores_per_socket);
  spec.sockets_per_node = 2;
  spec.cores_per_socket = cores_per_socket;
  return Topology::build(spec);
}

Topology asymmetric(int cores, int fast_cores, double fast_scale) {
  if (fast_cores > cores)
    throw std::invalid_argument("asymmetric: fast_cores > cores");
  TopologySpec spec;
  spec.name = "asymmetric" + std::to_string(cores);
  spec.cores_per_socket = cores;
  spec.clock_scales.assign(static_cast<std::size_t>(cores), 1.0);
  for (int i = 0; i < fast_cores; ++i)
    spec.clock_scales[static_cast<std::size_t>(i)] = fast_scale;
  return Topology::build(spec);
}

Topology by_name(std::string_view name) {
  if (name == "tigerton") return tigerton();
  if (name == "barcelona") return barcelona();
  if (name == "nehalem") return nehalem();
  constexpr std::string_view kGeneric = "generic";
  if (name.rfind(kGeneric, 0) == 0) {
    int n = 0;
    const auto* begin = name.data() + kGeneric.size();
    const auto* end = name.data() + name.size();
    if (std::from_chars(begin, end, n).ec == std::errc{} && n >= 1)
      return generic(n);
  }
  throw std::invalid_argument("unknown topology preset: " + std::string(name));
}

}  // namespace speedbal::presets
