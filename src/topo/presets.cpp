#include "topo/presets.hpp"

#include <charconv>
#include <cstdio>
#include <stdexcept>
#include <string>

namespace speedbal::presets {

Topology tigerton() {
  TopologySpec spec;
  spec.name = "tigerton";
  spec.numa_nodes = 1;
  spec.sockets_per_node = 4;
  spec.cores_per_socket = 4;
  spec.cores_per_cache_group = 2;  // L2 shared per pair of cores.
  return Topology::build(spec);
}

Topology barcelona() {
  TopologySpec spec;
  spec.name = "barcelona";
  spec.numa_nodes = 4;
  spec.sockets_per_node = 1;
  spec.cores_per_socket = 4;
  spec.cores_per_cache_group = 4;  // L3 shared per socket.
  return Topology::build(spec);
}

Topology nehalem() {
  TopologySpec spec;
  spec.name = "nehalem";
  spec.numa_nodes = 2;
  spec.sockets_per_node = 1;
  spec.cores_per_socket = 4;
  spec.cores_per_cache_group = 4;
  spec.smt_per_core = 2;
  return Topology::build(spec);
}

Topology generic(int cores) {
  TopologySpec spec;
  spec.name = "generic" + std::to_string(cores);
  spec.cores_per_socket = cores;
  return Topology::build(spec);
}

Topology dual_socket(int cores_per_socket) {
  TopologySpec spec;
  spec.name = "dual" + std::to_string(cores_per_socket);
  spec.sockets_per_node = 2;
  spec.cores_per_socket = cores_per_socket;
  return Topology::build(spec);
}

Topology asymmetric(int cores, int fast_cores, double fast_scale) {
  if (fast_cores > cores)
    throw std::invalid_argument("asymmetric: fast_cores > cores");
  TopologySpec spec;
  spec.name = "asymmetric" + std::to_string(cores);
  spec.cores_per_socket = cores;
  spec.clock_scales.assign(static_cast<std::size_t>(cores), 1.0);
  for (int i = 0; i < fast_cores; ++i)
    spec.clock_scales[static_cast<std::size_t>(i)] = fast_scale;
  return Topology::build(spec);
}

Topology big_little(int big, int little, double big_scale) {
  if (big < 1 || little < 1)
    throw std::invalid_argument("big_little: need >= 1 core of each kind");
  if (big_scale <= 0.0)
    throw std::invalid_argument("big_little: big_scale must be > 0");
  TopologySpec spec;
  // %g keeps the scale's spelling minimal ("3", "2.5") so the name survives
  // a by_name round trip (scenario JSON stores topologies by name).
  char scale_buf[32];
  std::snprintf(scale_buf, sizeof(scale_buf), "%g", big_scale);
  spec.name = "biglittle" + std::to_string(big) + "+" + std::to_string(little) +
              "x" + scale_buf;
  spec.cores_per_socket = big + little;
  spec.clock_scales.assign(static_cast<std::size_t>(big + little), 1.0);
  for (int i = 0; i < big; ++i)
    spec.clock_scales[static_cast<std::size_t>(i)] = big_scale;
  return Topology::build(spec);
}

Topology ladder(int cores) {
  if (cores < 2) throw std::invalid_argument("ladder: need >= 2 cores");
  TopologySpec spec;
  spec.name = "ladder" + std::to_string(cores);
  spec.cores_per_socket = cores;
  spec.clock_scales.resize(static_cast<std::size_t>(cores));
  for (int i = 0; i < cores; ++i)
    spec.clock_scales[static_cast<std::size_t>(i)] =
        1.0 - 0.75 * static_cast<double>(i) / static_cast<double>(cores - 1);
  return Topology::build(spec);
}

Topology by_name(std::string_view name) {
  if (name == "tigerton") return tigerton();
  if (name == "barcelona") return barcelona();
  if (name == "nehalem") return nehalem();
  constexpr std::string_view kGeneric = "generic";
  if (name.rfind(kGeneric, 0) == 0) {
    int n = 0;
    const auto* begin = name.data() + kGeneric.size();
    const auto* end = name.data() + name.size();
    if (std::from_chars(begin, end, n).ec == std::errc{} && n >= 1)
      return generic(n);
  }
  constexpr std::string_view kLadder = "ladder";
  if (name.rfind(kLadder, 0) == 0) {
    int n = 0;
    const auto* begin = name.data() + kLadder.size();
    const auto* end = name.data() + name.size();
    if (std::from_chars(begin, end, n).ec == std::errc{} && n >= 2)
      return ladder(n);
  }
  constexpr std::string_view kBigLittle = "biglittle";
  if (name.rfind(kBigLittle, 0) == 0) {
    // "biglittle<big>+<little>x<scale>".
    int big = 0, little = 0;
    double scale = 0.0;
    const auto* end = name.data() + name.size();
    auto r = std::from_chars(name.data() + kBigLittle.size(), end, big);
    if (r.ec == std::errc{} && r.ptr < end && *r.ptr == '+') {
      r = std::from_chars(r.ptr + 1, end, little);
      if (r.ec == std::errc{} && r.ptr < end && *r.ptr == 'x') {
        r = std::from_chars(r.ptr + 1, end, scale);
        if (r.ec == std::errc{} && r.ptr == end && big >= 1 && little >= 1 &&
            scale > 0.0)
          return big_little(big, little, scale);
      }
    }
  }
  throw std::invalid_argument("unknown topology preset: " + std::string(name));
}

}  // namespace speedbal::presets
