#pragma once

#include <span>
#include <string>
#include <vector>

#include "topo/topology.hpp"
#include "util/time.hpp"

namespace speedbal {

/// Scheduling-domain level, bottom (most-shared hardware) to top. Mirrors
/// the Linux 2.6 hierarchy the paper describes in Section 2: SMT context,
/// shared cache, socket/package, NUMA node.
enum class DomainLevel { Smt = 0, Cache = 1, Socket = 2, Numa = 3 };

const char* to_string(DomainLevel level);

/// One scheduling domain: a set of CPUs partitioned into child groups. The
/// Linux load balancer balances *between groups* of a domain, progressing up
/// the hierarchy, each level with its own balancing interval and imbalance
/// tolerance (Section 2 of the paper gives the default values modeled here).
struct Domain {
  DomainLevel level = DomainLevel::Cache;
  std::vector<CoreId> cores;                 ///< All CPUs spanned.
  std::vector<std::vector<CoreId>> groups;   ///< Partition into child groups.
  SimTime busy_interval = 0;  ///< Balance period when the CPU is busy.
  SimTime idle_interval = 0;  ///< Balance period when the CPU is idle.
  int imbalance_pct = 125;    ///< Busiest group must exceed local by this %.
};

/// The per-machine domain hierarchy. For each CPU, `domains_for` returns the
/// chain of domains containing it, bottom-up (the order in which Linux
/// balances). Levels that would be degenerate (single group) are omitted.
class DomainTree {
 public:
  static DomainTree build(const Topology& topo);

  /// Domains containing `core`, ordered bottom (SMT) to top (NUMA/system).
  std::span<const std::size_t> domains_for(CoreId core) const;

  const Domain& domain(std::size_t idx) const { return domains_.at(idx); }
  std::size_t num_domains() const { return domains_.size(); }

  /// Highest level at which two cores share a domain; used to pick
  /// per-migration-distance policies (e.g. blocking NUMA migrations).
  DomainLevel lowest_common_level(const Topology& topo, CoreId a, CoreId b) const;

 private:
  std::vector<Domain> domains_;
  std::vector<std::vector<std::size_t>> per_core_;  // indices into domains_.
};

}  // namespace speedbal
