#include "topo/domains.hpp"

#include <algorithm>
#include <map>

namespace speedbal {

const char* to_string(DomainLevel level) {
  switch (level) {
    case DomainLevel::Smt: return "SMT";
    case DomainLevel::Cache: return "CACHE";
    case DomainLevel::Socket: return "SOCKET";
    case DomainLevel::Numa: return "NUMA";
  }
  return "?";
}

namespace {

// Default balancing parameters per level, following the paper's Section 2
// description of the Linux 2.6.28 defaults: idle cores balance every 1-2
// ticks (10ms) on UMA and 64ms across NUMA; busy cores every 64-128ms for
// SMT, 64-256ms for shared packages, 256-1024ms for NUMA. Imbalance
// percentage is 125% at most levels, 110% for SMT.
void apply_defaults(Domain& d) {
  switch (d.level) {
    case DomainLevel::Smt:
      d.busy_interval = msec(64);
      d.idle_interval = msec(10);
      d.imbalance_pct = 110;
      break;
    case DomainLevel::Cache:
      d.busy_interval = msec(128);
      d.idle_interval = msec(10);
      d.imbalance_pct = 125;
      break;
    case DomainLevel::Socket:
      d.busy_interval = msec(256);
      d.idle_interval = msec(10);
      d.imbalance_pct = 125;
      break;
    case DomainLevel::Numa:
      d.busy_interval = msec(512);
      d.idle_interval = msec(64);
      d.imbalance_pct = 125;
      break;
  }
}

// Build the domain at `level` by partitioning cores with `group_key`; skip
// degenerate domains (one group, or groups of one core at the bottom level).
template <typename KeyFn, typename GroupFn>
void add_level(std::vector<Domain>& out, const Topology& topo,
               DomainLevel level, KeyFn parent_key, GroupFn group_key) {
  // Partition all cores by parent_key; within each partition, split into
  // groups by group_key. One Domain per partition.
  std::map<int, std::map<int, std::vector<CoreId>>> parts;
  for (const auto& c : topo.cores())
    parts[parent_key(c)][group_key(c)].push_back(c.id);
  for (auto& [pkey, groups] : parts) {
    (void)pkey;
    if (groups.size() < 2) continue;  // Degenerate: nothing to balance.
    Domain d;
    d.level = level;
    for (auto& [gkey, members] : groups) {
      (void)gkey;
      for (CoreId id : members) d.cores.push_back(id);
      d.groups.push_back(std::move(members));
    }
    std::sort(d.cores.begin(), d.cores.end());
    apply_defaults(d);
    out.push_back(std::move(d));
  }
}

}  // namespace

DomainTree DomainTree::build(const Topology& topo) {
  DomainTree tree;
  auto& out = tree.domains_;

  if (topo.has_smt()) {
    // SMT domain: one per physical core, groups are the hardware contexts.
    // Physical core identified by min(id, sibling).
    add_level(out, topo, DomainLevel::Smt,
              [](const CoreInfo& c) {
                return c.smt_sibling >= 0 ? std::min(c.id, c.smt_sibling) : c.id;
              },
              [](const CoreInfo& c) { return c.id; });
  }
  // Cache domain: one per cache group, child groups are physical cores (or
  // single CPUs without SMT).
  add_level(out, topo, DomainLevel::Cache,
            [](const CoreInfo& c) { return c.cache_group; },
            [](const CoreInfo& c) {
              return c.smt_sibling >= 0 ? std::min(c.id, c.smt_sibling) : c.id;
            });
  // Socket domain: one per socket, child groups are cache groups.
  add_level(out, topo, DomainLevel::Socket,
            [](const CoreInfo& c) { return c.socket; },
            [](const CoreInfo& c) { return c.cache_group; });
  // Top domain spans the machine with sockets as groups. On a UMA machine
  // this is the "system" domain; on NUMA it balances across nodes. When
  // there are multiple NUMA nodes we group by node, otherwise by socket.
  if (topo.num_numa_nodes() > 1) {
    add_level(out, topo, DomainLevel::Numa,
              [](const CoreInfo&) { return 0; },
              [](const CoreInfo& c) { return c.numa_node; });
  } else if (topo.num_sockets() > 1) {
    Domain d;
    d.level = DomainLevel::Socket;
    std::map<int, std::vector<CoreId>> by_socket;
    for (const auto& c : topo.cores()) by_socket[c.socket].push_back(c.id);
    for (auto& [s, members] : by_socket) {
      (void)s;
      for (CoreId id : members) d.cores.push_back(id);
      d.groups.push_back(std::move(members));
    }
    std::sort(d.cores.begin(), d.cores.end());
    apply_defaults(d);
    out.push_back(std::move(d));
  }

  // Order domains bottom-up per core.
  tree.per_core_.resize(static_cast<std::size_t>(topo.num_cores()));
  for (CoreId c = 0; c < topo.num_cores(); ++c) {
    auto& chain = tree.per_core_[static_cast<std::size_t>(c)];
    for (std::size_t i = 0; i < out.size(); ++i) {
      const auto& cores = out[i].cores;
      if (std::binary_search(cores.begin(), cores.end(), c)) chain.push_back(i);
    }
    std::sort(chain.begin(), chain.end(), [&](std::size_t a, std::size_t b) {
      if (out[a].level != out[b].level) return out[a].level < out[b].level;
      return out[a].cores.size() < out[b].cores.size();
    });
  }
  return tree;
}

std::span<const std::size_t> DomainTree::domains_for(CoreId core) const {
  return per_core_.at(static_cast<std::size_t>(core));
}

DomainLevel DomainTree::lowest_common_level(const Topology& topo, CoreId a,
                                            CoreId b) const {
  if (topo.has_smt() && topo.core(a).smt_sibling == b) return DomainLevel::Smt;
  if (topo.same_cache(a, b)) return DomainLevel::Cache;
  if (topo.same_socket(a, b) || topo.same_numa(a, b)) return DomainLevel::Socket;
  return DomainLevel::Numa;
}

}  // namespace speedbal
