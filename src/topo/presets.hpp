#pragma once

#include <string_view>

#include "topo/topology.hpp"

namespace speedbal {

/// Machine presets matching the paper's Table 1 test systems plus generic
/// shapes used by the unit tests and ablation benchmarks.
namespace presets {

/// Intel Xeon E7310 "Tigerton": UMA, 4 sockets x 4 cores, each pair of cores
/// shares an L2 cache (Table 1).
Topology tigerton();

/// AMD Opteron 8350 "Barcelona": NUMA, 4 sockets (= 4 NUMA nodes) x 4 cores,
/// cores within a socket share the L3 (Table 1).
Topology barcelona();

/// Intel Nehalem: 2 sockets x 4 cores x 2 SMT contexts, NUMA (Section 6).
Topology nehalem();

/// Flat UMA machine with `cores` identical cores sharing one cache.
Topology generic(int cores);

/// Two sockets of `cores_per_socket` cores each, UMA.
Topology dual_socket(int cores_per_socket);

/// Asymmetric machine (Turbo-Boost-like, Section 4): `cores` total,
/// the first `fast_cores` run at `fast_scale` (> 1.0), the rest at 1.0.
Topology asymmetric(int cores, int fast_cores, double fast_scale);

/// Look up a preset by name ("tigerton", "barcelona", "nehalem", or
/// "generic<N>" e.g. "generic8"); throws std::invalid_argument if unknown.
Topology by_name(std::string_view name);

}  // namespace presets
}  // namespace speedbal
