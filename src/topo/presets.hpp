#pragma once

#include <string_view>

#include "topo/topology.hpp"

namespace speedbal {

/// Machine presets matching the paper's Table 1 test systems plus generic
/// shapes used by the unit tests and ablation benchmarks.
namespace presets {

/// Intel Xeon E7310 "Tigerton": UMA, 4 sockets x 4 cores, each pair of cores
/// shares an L2 cache (Table 1).
Topology tigerton();

/// AMD Opteron 8350 "Barcelona": NUMA, 4 sockets (= 4 NUMA nodes) x 4 cores,
/// cores within a socket share the L3 (Table 1).
Topology barcelona();

/// Intel Nehalem: 2 sockets x 4 cores x 2 SMT contexts, NUMA (Section 6).
Topology nehalem();

/// Flat UMA machine with `cores` identical cores sharing one cache.
Topology generic(int cores);

/// Two sockets of `cores_per_socket` cores each, UMA.
Topology dual_socket(int cores_per_socket);

/// Asymmetric machine (Turbo-Boost-like, Section 4): `cores` total,
/// the first `fast_cores` run at `fast_scale` (> 1.0), the rest at 1.0.
Topology asymmetric(int cores, int fast_cores, double fast_scale);

/// big.LITTLE machine: `big` performance cores at clock scale `big_scale`
/// followed by `little` efficiency cores at 1.0, one socket, shared cache.
/// Named "biglittle<big>+<little>x<big_scale>" (e.g. "biglittle4+4x3"), so
/// the speed ratio is recoverable from the name alone.
Topology big_little(int big, int little, double big_scale);

/// Per-core frequency ladder: `cores` cores whose clock scales descend
/// linearly from 1.0 (core 0) to 0.25 (last core) — the maximally
/// heterogeneous shape for partitioning stress tests. Named "ladder<N>".
Topology ladder(int cores);

/// Look up a preset by name ("tigerton", "barcelona", "nehalem",
/// "generic<N>", "biglittle<B>+<L>x<R>", or "ladder<N>"); throws
/// std::invalid_argument if unknown.
Topology by_name(std::string_view name);

}  // namespace presets
}  // namespace speedbal
