#include "native/cpu_topology.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

namespace speedbal::native {
namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p);
  if (!in) return {};
  std::string s;
  std::getline(in, s);
  return s;
}

int read_int(const std::filesystem::path& p, int def) {
  const std::string s = read_file(p);
  if (s.empty()) return def;
  return static_cast<int>(std::strtol(s.c_str(), nullptr, 10));
}

CpuSet read_cpulist(const std::filesystem::path& p, int self) {
  const std::string s = read_file(p);
  if (s.empty()) return CpuSet::single(self);
  try {
    return CpuSet::parse_list(s);
  } catch (const std::exception&) {
    return CpuSet::single(self);
  }
}

}  // namespace

bool SysTopology::same_cache(int a, int b) const {
  return cpus.at(static_cast<std::size_t>(a)).cache_siblings.contains(b);
}
bool SysTopology::same_package(int a, int b) const {
  return cpus.at(static_cast<std::size_t>(a)).package_id ==
         cpus.at(static_cast<std::size_t>(b)).package_id;
}
bool SysTopology::same_numa(int a, int b) const {
  return cpus.at(static_cast<std::size_t>(a)).numa_node ==
         cpus.at(static_cast<std::size_t>(b)).numa_node;
}

SysTopology read_sys_topology(const std::string& root) {
  SysTopology topo;
  std::error_code ec;
  std::vector<int> ids;
  for (const auto& entry : std::filesystem::directory_iterator(root, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("cpu", 0) != 0) continue;
    const std::string num = name.substr(3);
    if (num.empty() ||
        !std::all_of(num.begin(), num.end(), [](unsigned char c) { return std::isdigit(c); }))
      continue;
    ids.push_back(static_cast<int>(std::strtol(num.c_str(), nullptr, 10)));
  }
  std::sort(ids.begin(), ids.end());
  if (ids.empty()) ids.push_back(0);  // Degenerate single-CPU fallback.

  for (int id : ids) {
    const std::filesystem::path base = std::filesystem::path(root) / ("cpu" + std::to_string(id));
    SysCpu cpu;
    cpu.cpu = id;
    cpu.package_id = read_int(base / "topology/physical_package_id", 0);
    cpu.thread_siblings =
        read_cpulist(base / "topology/thread_siblings_list", id);
    // The last cache index present is the LLC; probe index3 then index2.
    CpuSet cache = CpuSet::single(id);
    for (const char* idx : {"index3", "index2", "index1"}) {
      const auto p = base / "cache" / idx / "shared_cpu_list";
      if (std::filesystem::exists(p, ec)) {
        cache = read_cpulist(p, id);
        break;
      }
    }
    cpu.cache_siblings = cache;
    // NUMA membership: a nodeN symlink/directory under the cpu directory.
    cpu.numa_node = 0;
    for (const auto& entry : std::filesystem::directory_iterator(base, ec)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("node", 0) == 0 && name.size() > 4)
        cpu.numa_node = static_cast<int>(std::strtol(name.c_str() + 4, nullptr, 10));
    }
    topo.cpus.push_back(cpu);
  }
  return topo;
}

}  // namespace speedbal::native
