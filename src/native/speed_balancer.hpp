#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <thread>

#include "native/affinity.hpp"
#include "native/cpu_topology.hpp"
#include "native/procfs.hpp"
#include "obs/recorder.hpp"
#include "util/rng.hpp"

namespace speedbal::native {

/// Configuration of the real user-level speed balancer (Section 5.2).
struct NativeBalancerConfig {
  std::chrono::milliseconds interval{100};  ///< Balance interval B.
  double threshold = 0.9;                   ///< T_s.
  int post_migration_block = 2;             ///< In balance intervals.
  /// Cores to balance over; empty means every online CPU.
  CpuSet cores;
  bool block_numa = true;
  /// Delay before the first pass, letting /proc catch up with the threads
  /// the target just spawned (the paper's startup delay).
  std::chrono::milliseconds startup_delay{100};
  bool initial_round_robin = true;
  std::uint64_t seed = 1;

  /// Bounded retry-with-backoff for transient sched_setaffinity failures.
  RetryPolicy affinity_retry;
  /// Fault-injection shim consulted before every affinity call and (routed
  /// into the Procfs reader) every stat read; null = real syscalls only.
  perturb::FaultInjector* fault_injector = nullptr;
  /// A core whose pulls fail with EINVAL (hotplugged out from under us) is
  /// quarantined for this many passes before being probed again.
  int dead_core_backoff_passes = 10;
};

/// The paper's speedbalancer as a real POSIX program component: monitors
/// the threads of a target process through /proc, pins them round-robin at
/// startup, and periodically pulls the least-migrated thread from a core
/// whose measured speed (delta CPU time / delta wall time) is below the
/// global average, using sched_setaffinity.
///
/// The paper runs one balancer thread per core with no shared state except
/// the global speed; within a single process that distribution only adds
/// scheduling jitter, so this implementation performs the per-core passes
/// sequentially in a randomized order each interval — the per-core decision
/// rule is identical.
class NativeSpeedBalancer {
 public:
  NativeSpeedBalancer(pid_t target, NativeBalancerConfig config,
                      Procfs procfs = Procfs(),
                      SysTopology topo = read_sys_topology());

  /// Discover the target's threads and pin them round-robin (idempotent;
  /// picks up newly spawned threads on each call).
  void pin_round_robin();

  /// One measurement + balancing pass over all cores; returns the number
  /// of migrations performed, or -1 once the target has exited.
  int step();

  /// Blocking loop: pin, then step every interval until the target exits.
  void run();

  /// Background-thread variants of run().
  void start();
  void stop();

  std::int64_t migrations() const { return migrations_; }
  /// Speeds from the most recent pass, per core (for tests/telemetry).
  const std::map<int, double>& core_speeds() const { return core_speeds_; }
  double global_speed() const { return global_speed_; }
  /// Cores currently quarantined after EINVAL pull failures (hotplugged
  /// out); probed again after dead_core_backoff_passes passes.
  std::vector<int> quarantined_cores() const;
  /// Passes skipped because the speed sample was incomplete (procfs reads
  /// failed) and pulls that failed permanently, for tests/telemetry.
  std::int64_t sample_failures() const { return sample_failures_; }
  std::int64_t affinity_failures() const { return affinity_failures_; }

  /// Attach an observability recorder: every step() then appends a speed
  /// timeline sample, logs each pull decision with its reason, and emits an
  /// instant trace event per migration. Timestamps are microseconds of wall
  /// time since this call. The recorder is internally synchronized, so it
  /// may be read/exported after stop() regardless of the worker thread.
  void set_recorder(obs::RunRecorder* rec);

 private:
  struct TidState {
    long last_ticks = 0;
    int migrations = 0;
    bool seen = false;
  };

  bool measure(std::map<int, double>& core_speed,
               std::map<pid_t, double>& thread_speed,
               std::map<pid_t, int>& thread_core);

  pid_t target_;
  NativeBalancerConfig config_;
  Procfs procfs_;
  SysTopology topo_;
  std::vector<int> cores_;
  Rng rng_;

  std::map<pid_t, TidState> tids_;
  std::chrono::steady_clock::time_point last_sample_{};
  bool have_sample_ = false;

  std::map<int, std::chrono::steady_clock::time_point> last_involved_;
  std::map<int, double> core_speeds_;
  double global_speed_ = 0.0;
  std::int64_t migrations_ = 0;
  /// Quarantine bookkeeping: core -> pass index at which to probe again.
  std::map<int, std::int64_t> dead_until_;
  std::int64_t pass_count_ = 0;
  std::int64_t sample_failures_ = 0;
  std::int64_t affinity_failures_ = 0;

  obs::RunRecorder* recorder_ = nullptr;
  std::chrono::steady_clock::time_point trace_origin_{};

  std::thread worker_;
  std::atomic<bool> stopping_{false};
};

}  // namespace speedbal::native
