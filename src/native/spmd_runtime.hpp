#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

namespace speedbal::native {

/// Barrier wait policies of the runtimes the paper studies, for real
/// pthreads (compare app/barrier.hpp for the simulated equivalents).
enum class NativeWaitPolicy {
  Spin,       ///< Busy poll.
  Yield,      ///< Poll + sched_yield (UPC/MPI).
  Sleep,      ///< Block on a futex-backed condition variable.
  SleepPoll,  ///< usleep(1) poll loop (the paper's modified UPC barrier).
};

/// A real SPMD microbenchmark: `nthreads` POSIX threads run `phases`
/// rounds of busy-loop computation separated by a sense-reversing barrier
/// with the configured wait policy. This is the native analogue of the
/// paper's modified EP benchmark (Section 6.1) and the workload driven by
/// the speedbalancer tool in integration tests.
struct NativeSpmdSpec {
  int nthreads = 2;
  int phases = 4;
  std::chrono::microseconds work_per_phase{1000};
  NativeWaitPolicy policy = NativeWaitPolicy::Yield;
};

/// Results of one run.
struct NativeSpmdResult {
  double wall_seconds = 0.0;
  /// Per-thread busy-loop iterations actually performed (progress proxy).
  std::vector<std::uint64_t> iterations;
};

/// Sense-reversing centralized barrier with pluggable wait policy.
class NativeBarrier {
 public:
  explicit NativeBarrier(int parties, NativeWaitPolicy policy);

  /// Block until all parties arrive.
  void wait();

 private:
  const int parties_;
  const NativeWaitPolicy policy_;
  std::atomic<int> arrived_{0};
  std::atomic<std::uint64_t> generation_{0};
};

/// Run the SPMD microbenchmark to completion (blocking).
NativeSpmdResult run_native_spmd(const NativeSpmdSpec& spec);

/// Calibrated busy work: spins for approximately `duration` of wall time,
/// returning the number of loop iterations (so the optimizer cannot drop it).
std::uint64_t busy_spin(std::chrono::microseconds duration);

}  // namespace speedbal::native
