#include "native/affinity.hpp"

#include <sched.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <thread>

namespace speedbal::native {

CpuSet CpuSet::of(const std::vector<int>& cpus) {
  CpuSet s;
  for (int c : cpus) s.add(c);
  return s;
}

int CpuSet::count() const { return __builtin_popcountll(mask_); }

std::vector<int> CpuSet::cpus() const {
  std::vector<int> out;
  for (int c = 0; c < 64; ++c)
    if (contains(c)) out.push_back(c);
  return out;
}

std::string CpuSet::to_list() const {
  std::string out;
  int c = 0;
  while (c < 64) {
    if (!contains(c)) {
      ++c;
      continue;
    }
    int end = c;
    while (end + 1 < 64 && contains(end + 1)) ++end;
    if (!out.empty()) out += ',';
    out += std::to_string(c);
    if (end > c) out += '-' + std::to_string(end);
    c = end + 1;
  }
  return out;
}

CpuSet CpuSet::parse_list(const std::string& list) {
  CpuSet s;
  const char* p = list.c_str();
  while (*p != '\0') {
    char* end = nullptr;
    const long lo = std::strtol(p, &end, 10);
    if (end == p) throw std::invalid_argument("bad cpu list: " + list);
    long hi = lo;
    p = end;
    if (*p == '-') {
      hi = std::strtol(p + 1, &end, 10);
      if (end == p + 1) throw std::invalid_argument("bad cpu list: " + list);
      p = end;
    }
    if (lo < 0 || hi > 63 || hi < lo)
      throw std::invalid_argument("cpu list out of range: " + list);
    for (long c = lo; c <= hi; ++c) s.add(static_cast<int>(c));
    if (*p == ',') ++p;
    while (*p == ' ') ++p;
  }
  return s;
}

namespace {

bool transient_errno(int err) { return err == EINTR || err == EAGAIN; }

}  // namespace

int set_affinity_errno(pid_t tid, const CpuSet& set, const RetryPolicy& retry,
                       perturb::FaultInjector* inject) {
  cpu_set_t cs;
  CPU_ZERO(&cs);
  for (int c : set.cpus()) CPU_SET(c, &cs);
  auto backoff = retry.initial_backoff;
  int err = EINVAL;
  const int attempts = retry.max_attempts > 0 ? retry.max_attempts : 1;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    err = 0;
    if (inject != nullptr)
      err = inject->next_error(perturb::FaultOp::SetAffinity);
    if (err == 0)
      err = sched_setaffinity(tid, sizeof(cs), &cs) == 0 ? 0 : errno;
    if (err == 0) return 0;
    if (!transient_errno(err)) return err;  // Permanent; retrying cannot help.
  }
  return err;
}

bool set_affinity(pid_t tid, const CpuSet& set) {
  return set_affinity_errno(tid, set) == 0;
}

CpuSet get_affinity(pid_t tid) {
  cpu_set_t cs;
  CPU_ZERO(&cs);
  if (sched_getaffinity(tid, sizeof(cs), &cs) != 0) return {};
  CpuSet out;
  for (int c = 0; c < 64; ++c)
    if (CPU_ISSET(c, &cs)) out.add(c);
  return out;
}

int current_cpu() { return sched_getcpu(); }

int online_cpus() {
  const long n = sysconf(_SC_NPROCESSORS_ONLN);
  return n > 0 ? static_cast<int>(n) : 1;
}

}  // namespace speedbal::native
