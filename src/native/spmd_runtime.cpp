#include "native/spmd_runtime.hpp"

#include <sched.h>
#include <unistd.h>

#include <thread>

namespace speedbal::native {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

NativeBarrier::NativeBarrier(int parties, NativeWaitPolicy policy)
    : parties_(parties), policy_(policy) {}

void NativeBarrier::wait() {
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
    arrived_.store(0, std::memory_order_relaxed);
    generation_.fetch_add(1, std::memory_order_acq_rel);
    generation_.notify_all();
    return;
  }
  while (generation_.load(std::memory_order_acquire) == gen) {
    switch (policy_) {
      case NativeWaitPolicy::Spin:
        // Busy poll; stays runnable and burns its full timeslices.
        break;
      case NativeWaitPolicy::Yield:
        sched_yield();
        break;
      case NativeWaitPolicy::Sleep:
        // Futex wait: removed from the run queue until released.
        generation_.wait(gen, std::memory_order_acquire);
        break;
      case NativeWaitPolicy::SleepPoll:
        usleep(1);
        break;
    }
  }
}

std::uint64_t busy_spin(std::chrono::microseconds duration) {
  const auto end = Clock::now() + duration;
  std::uint64_t iters = 0;
  // Volatile sink defeats loop elision without touching memory bandwidth.
  volatile std::uint64_t sink = 0;
  while (Clock::now() < end) {
    for (int i = 0; i < 64; ++i) sink = sink + 1;
    iters += 64;
  }
  return iters;
}

NativeSpmdResult run_native_spmd(const NativeSpmdSpec& spec) {
  NativeBarrier barrier(spec.nthreads, spec.policy);
  NativeSpmdResult result;
  result.iterations.assign(static_cast<std::size_t>(spec.nthreads), 0);

  const auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(spec.nthreads));
  for (int i = 0; i < spec.nthreads; ++i) {
    threads.emplace_back([&, i] {
      std::uint64_t iters = 0;
      for (int p = 0; p < spec.phases; ++p) {
        iters += busy_spin(spec.work_per_phase);
        barrier.wait();
      }
      result.iterations[static_cast<std::size_t>(i)] = iters;
    });
  }
  for (auto& t : threads) t.join();
  result.wall_seconds = std::chrono::duration<double>(Clock::now() - start).count();
  return result;
}

}  // namespace speedbal::native
