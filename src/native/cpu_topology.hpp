#pragma once

#include <string>
#include <vector>

#include "native/affinity.hpp"

namespace speedbal::native {

/// One logical CPU as described by /sys/devices/system/cpu (what the real
/// speedbalancer reads to learn the scheduling domains, Section 5.2).
struct SysCpu {
  int cpu = -1;
  int package_id = 0;        ///< physical_package_id.
  int numa_node = 0;         ///< node* directory membership.
  CpuSet thread_siblings;    ///< SMT contexts sharing the physical core.
  CpuSet cache_siblings;     ///< CPUs sharing the last-level cache.
};

/// Discovered machine topology.
struct SysTopology {
  std::vector<SysCpu> cpus;

  int num_cpus() const { return static_cast<int>(cpus.size()); }
  bool same_cache(int a, int b) const;
  bool same_package(int a, int b) const;
  bool same_numa(int a, int b) const;
};

/// Read the topology from a sysfs tree; `root` defaults to the real sysfs
/// and is injectable so tests can use a synthetic tree. Missing files
/// degrade gracefully (single package, no SMT) rather than failing — the
/// balancer must run on minimal containers.
SysTopology read_sys_topology(const std::string& root = "/sys/devices/system/cpu");

}  // namespace speedbal::native
