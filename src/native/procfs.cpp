#include "native/procfs.hpp"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace speedbal::native {

std::optional<TaskTimes> parse_stat_line(const std::string& line) {
  // Format: pid (comm) state ppid ... utime(14) stime(15) ... processor(39).
  // comm may contain anything including ')' and spaces, so split at the
  // last ')' of the line.
  const auto open = line.find('(');
  const auto close = line.rfind(')');
  if (open == std::string::npos || close == std::string::npos || close < open)
    return std::nullopt;

  TaskTimes t;
  t.tid = static_cast<pid_t>(std::strtol(line.c_str(), nullptr, 10));

  std::istringstream rest(line.substr(close + 1));
  // Fields after comm, 1-indexed from field 3 (state).
  std::vector<std::string> fields;
  std::string f;
  while (rest >> f) fields.push_back(f);
  // state=field 3 -> index 0; utime=14 -> index 11; stime=15 -> index 12;
  // processor=39 -> index 36.
  if (fields.size() < 13) return std::nullopt;
  t.state = fields[0].empty() ? '?' : fields[0][0];
  t.utime_ticks = std::strtol(fields[11].c_str(), nullptr, 10);
  t.stime_ticks = std::strtol(fields[12].c_str(), nullptr, 10);
  if (fields.size() > 36) t.cpu = static_cast<int>(std::strtol(fields[36].c_str(), nullptr, 10));
  return t;
}

std::vector<pid_t> Procfs::tids(pid_t pid) const {
  std::vector<pid_t> out;
  std::error_code ec;
  const std::filesystem::path dir = root_ + "/" + std::to_string(pid) + "/task";
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.empty() && std::all_of(name.begin(), name.end(), ::isdigit))
      out.push_back(static_cast<pid_t>(std::strtol(name.c_str(), nullptr, 10)));
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<TaskTimes> Procfs::task_times(pid_t pid, pid_t tid) const {
  const std::string path = root_ + "/" + std::to_string(pid) + "/task/" +
                           std::to_string(tid) + "/stat";
  auto backoff = std::chrono::microseconds(200);
  for (int attempt = 0; attempt < max_read_attempts_; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
    if (inject_ != nullptr) {
      const int err = inject_->next_error(perturb::FaultOp::ProcfsRead);
      if (err == EINTR || err == EAGAIN) continue;  // Transient: retry.
      if (err != 0) {                               // Permanent failure.
        ++read_failures_;
        return std::nullopt;
      }
    }
    std::ifstream in(path);
    if (!in) return std::nullopt;  // Thread exited: gone, not a failure.
    std::string line;
    std::getline(in, line);
    if (line.empty()) return std::nullopt;
    auto parsed = parse_stat_line(line);
    if (parsed) parsed->tid = tid;
    return parsed;  // Malformed lines will not improve on retry.
  }
  ++read_failures_;  // Transient failures exhausted the retry budget.
  return std::nullopt;
}

std::vector<TaskTimes> Procfs::all_task_times(pid_t pid) const {
  std::vector<TaskTimes> out;
  for (pid_t tid : tids(pid))
    if (auto t = task_times(pid, tid)) out.push_back(*t);
  return out;
}

bool Procfs::alive(pid_t pid) const {
  std::error_code ec;
  return std::filesystem::exists(root_ + "/" + std::to_string(pid), ec);
}

long Procfs::ticks_per_second() {
  const long hz = sysconf(_SC_CLK_TCK);
  return hz > 0 ? hz : 100;
}

}  // namespace speedbal::native
