#include "native/speed_balancer.hpp"

#include <algorithm>
#include <cerrno>

#include "util/log.hpp"

namespace speedbal::native {

namespace {
using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

NativeSpeedBalancer::NativeSpeedBalancer(pid_t target,
                                         NativeBalancerConfig config,
                                         Procfs procfs, SysTopology topo)
    : target_(target),
      config_(std::move(config)),
      procfs_(std::move(procfs)),
      topo_(std::move(topo)),
      rng_(config_.seed) {
  procfs_.set_fault_injector(config_.fault_injector);
  if (config_.cores.empty()) {
    for (int c = 0; c < online_cpus() && c < 64; ++c) cores_.push_back(c);
  } else {
    cores_ = config_.cores.cpus();
  }
}

void NativeSpeedBalancer::set_recorder(obs::RunRecorder* rec) {
  recorder_ = rec;
  trace_origin_ = Clock::now();
  if (rec != nullptr) rec->timeline().set_cores(cores_);
}

std::vector<int> NativeSpeedBalancer::quarantined_cores() const {
  std::vector<int> out;
  for (const auto& [c, until] : dead_until_)
    if (pass_count_ < until) out.push_back(c);
  return out;
}

void NativeSpeedBalancer::pin_round_robin() {
  const auto tids = procfs_.tids(target_);
  std::size_t i = 0;
  for (pid_t tid : tids) {
    auto [it, inserted] = tids_.emplace(tid, TidState{});
    it->second.seen = true;
    if (inserted && config_.initial_round_robin) {
      const int err =
          set_affinity_errno(tid, CpuSet::single(cores_[i % cores_.size()]),
                             config_.affinity_retry, config_.fault_injector);
      if (err != 0 && err != ESRCH) ++affinity_failures_;
    }
    ++i;
  }
}

bool NativeSpeedBalancer::measure(std::map<int, double>& core_speed,
                                  std::map<pid_t, double>& thread_speed,
                                  std::map<pid_t, int>& thread_core) {
  const std::int64_t fails_before = procfs_.read_failures();
  const auto samples = procfs_.all_task_times(target_);
  const auto now = Clock::now();
  if (procfs_.read_failures() > fails_before) {
    // The sweep was incomplete (stat reads failed past the retry budget):
    // balancing on partial speeds would mistake unread threads for absent
    // ones. Skip the pass; last_ticks stay put so the next delta is exact.
    ++sample_failures_;
    return false;
  }
  if (samples.empty()) return false;

  const double hz = static_cast<double>(Procfs::ticks_per_second());
  const double wall = have_sample_ ? seconds_between(last_sample_, now) : 0.0;

  std::map<int, std::pair<double, int>> acc;  // core -> (speed sum, count).
  for (const auto& s : samples) {
    auto& st = tids_[s.tid];
    if (have_sample_ && wall > 0.0) {
      const double cpu_s = static_cast<double>(s.total_ticks() - st.last_ticks) / hz;
      const double speed = std::clamp(cpu_s / wall, 0.0, 1.0);
      thread_speed[s.tid] = speed;
      thread_core[s.tid] = s.cpu;
      auto& [sum, count] = acc[s.cpu];
      sum += speed;
      ++count;
    }
    st.last_ticks = s.total_ticks();
  }
  last_sample_ = now;
  const bool ready = have_sample_;
  have_sample_ = true;
  if (!ready) return false;

  for (int c : cores_) {
    const auto it = acc.find(c);
    // An empty core offers full speed to anything migrated there.
    core_speed[c] = it == acc.end() || it->second.second == 0
                        ? 1.0
                        : it->second.first / it->second.second;
  }
  return true;
}

int NativeSpeedBalancer::step() {
  ++pass_count_;
  if (!procfs_.alive(target_)) return -1;
  const std::int64_t ts_us =
      recorder_ == nullptr
          ? 0
          : std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                  trace_origin_)
                .count();
  const auto log_sample_failed = [&] {
    if (recorder_ == nullptr) return;
    obs::DecisionRecord rec;
    rec.ts_us = ts_us;
    rec.reason = obs::PullReason::SampleFailed;
    recorder_->decisions().add(rec);
  };
  // A target that exited but has not been reaped yet keeps its /proc entry
  // as a zombie; treat an all-zombie (or thread-less) process as exited, or
  // the balancer would spin forever waiting for its own caller's waitpid.
  {
    const std::int64_t fails_before = procfs_.read_failures();
    const auto samples = procfs_.all_task_times(target_);
    if (procfs_.read_failures() > fails_before) {
      // Incomplete probe: do NOT mistake unreadable threads for a dead
      // target — skip the pass and try again next interval.
      ++sample_failures_;
      log_sample_failed();
      return 0;
    }
    bool any_live = false;
    for (const auto& s : samples)
      if (s.state != 'Z' && s.state != 'X') {
        any_live = true;
        break;
      }
    if (!any_live) return -1;
  }
  pin_round_robin();  // Pick up dynamically spawned threads.

  std::map<int, double> core_speed;
  std::map<pid_t, double> thread_speed;
  std::map<pid_t, int> thread_core;
  const std::int64_t sample_fails_before = sample_failures_;
  if (!measure(core_speed, thread_speed, thread_core)) {
    if (sample_failures_ > sample_fails_before) log_sample_failed();
    return 0;
  }

  double global = 0.0;
  for (const auto& [c, s] : core_speed) {
    (void)c;
    global += s;
  }
  global /= static_cast<double>(core_speed.size());
  core_speeds_ = core_speed;
  global_speed_ = global;

  std::int64_t sample_seq = -1;
  if (recorder_ != nullptr) {
    obs::SpeedSample sample;
    sample.ts_us = ts_us;
    sample.observer = -1;  // Sequential sweep, not a per-core balancer.
    sample.global = global;
    for (const int c : cores_) {
      const double s = core_speed.at(c);
      sample.core_speed.push_back(s);
      int managed = 0;
      for (const auto& [tid, core] : thread_core) {
        (void)tid;
        if (core == c) ++managed;
      }
      sample.queue_len.push_back(managed);
      sample.below_threshold.push_back(global > 0.0 &&
                                       s / global < config_.threshold);
    }
    sample_seq = recorder_->timeline().add(std::move(sample));
  }
  if (global <= 0.0) return 0;

  const auto now = Clock::now();
  const auto block = config_.post_migration_block * config_.interval;
  const auto blocked = [&](int c) {
    const auto it = last_involved_.find(c);
    return it != last_involved_.end() && now - it->second < block;
  };
  const auto log_decision = [&](int local, obs::PullReason reason, int source,
                                double source_speed, std::int64_t victim = -1,
                                bool tie_break = false) {
    if (recorder_ == nullptr) return;
    obs::DecisionRecord rec;
    rec.ts_us = ts_us;
    rec.local = local;
    rec.source = source;
    rec.victim = victim;
    rec.tie_break = tie_break;
    rec.local_speed = core_speed.at(local);
    rec.source_speed = source_speed;
    rec.global = global;
    rec.reason = reason;
    rec.sample_seq = sample_seq;
    recorder_->decisions().add(rec);
  };

  // Per-core balancer passes in random order (the distributed balancers of
  // the paper wake with random jitter; order is the only difference).
  std::vector<int> order = cores_;
  for (std::size_t i = order.size(); i > 1; --i)
    std::swap(order[i - 1], order[rng_.uniform_u64(i)]);

  // Graceful degradation: a core whose pulls failed with EINVAL has been
  // hotplugged out from under us; quarantine it for a few passes instead of
  // hammering a dead destination every interval.
  const auto quarantined = [&](int c) {
    const auto it = dead_until_.find(c);
    return it != dead_until_.end() && pass_count_ < it->second;
  };

  int moved = 0;
  for (int local : order) {
    if (quarantined(local)) {
      log_decision(local, obs::PullReason::CoreOffline, -1, 0.0);
      continue;
    }
    if (core_speed.at(local) <= global) {
      log_decision(local, obs::PullReason::BelowAverage, -1, 0.0);
      continue;
    }
    if (blocked(local)) {
      log_decision(local, obs::PullReason::LocalBlocked, -1, 0.0);
      continue;
    }
    int source = -1;
    double source_speed = 2.0;
    for (int c : cores_) {
      if (c == local) continue;
      const double s = core_speed.at(c);
      if (quarantined(c)) {
        log_decision(local, obs::PullReason::CoreOffline, c, s);
        continue;
      }
      if (blocked(c)) {
        log_decision(local, obs::PullReason::MigrationBlocked, c, s);
        continue;
      }
      if (s / global >= config_.threshold) {
        log_decision(local, obs::PullReason::AboveThreshold, c, s);
        continue;
      }
      if (config_.block_numa && c < topo_.num_cpus() &&
          local < topo_.num_cpus() && !topo_.same_numa(local, c)) {
        log_decision(local, obs::PullReason::NumaBlocked, c, s);
        continue;
      }
      if (s < source_speed) {
        source_speed = s;
        source = c;
      }
    }
    if (source < 0) {
      log_decision(local, obs::PullReason::NoCandidate, -1, 0.0);
      continue;
    }

    pid_t victim = -1;
    int victim_migrations = 0;
    int co_minimal = 0;  // Threads tied at the minimum migration count.
    for (const auto& [tid, core] : thread_core) {
      if (core != source) continue;
      const int m = tids_[tid].migrations;
      if (victim < 0 || m < victim_migrations) {
        victim = tid;
        victim_migrations = m;
        co_minimal = 1;
      } else if (m == victim_migrations) {
        ++co_minimal;
      }
    }
    if (victim < 0) {
      log_decision(local, obs::PullReason::NoVictim, source, source_speed);
      continue;
    }
    const int err = set_affinity_errno(victim, CpuSet::single(local),
                                       config_.affinity_retry,
                                       config_.fault_injector);
    if (err == ESRCH) continue;  // Tid raced away; not a failure.
    if (err == EINVAL) {
      // The destination core vanished (hotplug): every pull into it would
      // fail the same way, so quarantine it instead of retrying blindly.
      dead_until_[local] = pass_count_ + config_.dead_core_backoff_passes;
      ++affinity_failures_;
      log_decision(local, obs::PullReason::CoreOffline, source, source_speed,
                   victim);
      if (recorder_ != nullptr) recorder_->incr("affinity.einval");
      continue;
    }
    if (err != 0) {
      ++affinity_failures_;
      log_decision(local, obs::PullReason::AffinityFailed, source, source_speed,
                   victim);
      if (recorder_ != nullptr) recorder_->incr("affinity.failed");
      continue;
    }
    dead_until_.erase(local);  // A successful pull proves the core is back.
    ++tids_[victim].migrations;
    ++migrations_;
    ++moved;
    last_involved_[local] = now;
    last_involved_[source] = now;
    thread_core[victim] = local;
    log_decision(local, obs::PullReason::Pulled, source, source_speed, victim,
                 /*tie_break=*/co_minimal > 1);
    if (recorder_ != nullptr) {
      recorder_->trace().instant(ts_us, local, "migration", "migrate",
                                 {{"tid", static_cast<double>(victim)},
                                  {"from", static_cast<double>(source)},
                                  {"to", static_cast<double>(local)}},
                                 {{"cause", "speed"}});
      recorder_->incr("migrations.speed");
    }
    SB_LOG(Debug) << "native speedbalancer: tid " << victim << " core "
                  << source << " -> " << local;
  }
  return moved;
}

void NativeSpeedBalancer::run() {
  std::this_thread::sleep_for(config_.startup_delay);
  pin_round_robin();
  while (!stopping_.load(std::memory_order_relaxed)) {
    const auto jitter = std::chrono::milliseconds(
        rng_.uniform_u64(static_cast<std::uint64_t>(config_.interval.count()) + 1));
    std::this_thread::sleep_for(config_.interval + jitter);
    if (step() < 0) break;  // Target exited.
  }
}

void NativeSpeedBalancer::start() {
  stopping_.store(false);
  worker_ = std::thread([this] { run(); });
}

void NativeSpeedBalancer::stop() {
  stopping_.store(true);
  if (worker_.joinable()) worker_.join();
}

}  // namespace speedbal::native
