#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "perturb/fault_injection.hpp"

namespace speedbal::native {

/// Thin RAII-free value wrapper over cpu_set_t semantics, limited to 64
/// CPUs (ample for the paper's systems). Conversion helpers keep the
/// syscall surface in one place.
class CpuSet {
 public:
  CpuSet() = default;
  explicit CpuSet(std::uint64_t mask) : mask_(mask) {}

  static CpuSet single(int cpu) { return CpuSet(1ULL << cpu); }
  static CpuSet of(const std::vector<int>& cpus);

  void add(int cpu) { mask_ |= 1ULL << cpu; }
  void remove(int cpu) { mask_ &= ~(1ULL << cpu); }
  bool contains(int cpu) const { return (mask_ >> cpu) & 1ULL; }
  bool empty() const { return mask_ == 0; }
  int count() const;
  std::uint64_t mask() const { return mask_; }
  std::vector<int> cpus() const;

  /// "0,2-5"-style rendering (and parsing) of Linux cpu lists.
  std::string to_list() const;
  static CpuSet parse_list(const std::string& list);

  bool operator==(const CpuSet&) const = default;

 private:
  std::uint64_t mask_ = 0;
};

/// Bounded retry policy for transient syscall failures (EINTR/EAGAIN):
/// up to `max_attempts` tries, sleeping `initial_backoff` before the first
/// retry and doubling it each time. Permanent errors (ESRCH: thread gone,
/// EINVAL: no usable CPU in the mask) are never retried.
struct RetryPolicy {
  int max_attempts = 3;
  std::chrono::microseconds initial_backoff{200};
};

/// sched_setaffinity for a specific thread (tid) with bounded
/// retry-with-backoff on transient failures. Returns 0 on success or the
/// last errno; never throws. When `inject` is non-null it is consulted
/// before every real syscall attempt and a nonzero armed errno is treated
/// exactly like the syscall failing with it (the fault-injection shim).
int set_affinity_errno(pid_t tid, const CpuSet& set,
                       const RetryPolicy& retry = {},
                       perturb::FaultInjector* inject = nullptr);

/// Boolean convenience wrapper over set_affinity_errno (default retries,
/// no injection) — balancers must tolerate threads racing with them.
bool set_affinity(pid_t tid, const CpuSet& set);

/// sched_getaffinity; returns an empty set on failure.
CpuSet get_affinity(pid_t tid);

/// CPU the calling thread is currently executing on.
int current_cpu();

/// Number of online CPUs on this machine.
int online_cpus();

}  // namespace speedbal::native
