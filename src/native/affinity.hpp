#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

namespace speedbal::native {

/// Thin RAII-free value wrapper over cpu_set_t semantics, limited to 64
/// CPUs (ample for the paper's systems). Conversion helpers keep the
/// syscall surface in one place.
class CpuSet {
 public:
  CpuSet() = default;
  explicit CpuSet(std::uint64_t mask) : mask_(mask) {}

  static CpuSet single(int cpu) { return CpuSet(1ULL << cpu); }
  static CpuSet of(const std::vector<int>& cpus);

  void add(int cpu) { mask_ |= 1ULL << cpu; }
  void remove(int cpu) { mask_ &= ~(1ULL << cpu); }
  bool contains(int cpu) const { return (mask_ >> cpu) & 1ULL; }
  bool empty() const { return mask_ == 0; }
  int count() const;
  std::uint64_t mask() const { return mask_; }
  std::vector<int> cpus() const;

  /// "0,2-5"-style rendering (and parsing) of Linux cpu lists.
  std::string to_list() const;
  static CpuSet parse_list(const std::string& list);

  bool operator==(const CpuSet&) const = default;

 private:
  std::uint64_t mask_ = 0;
};

/// sched_setaffinity for a specific thread (tid); returns false on failure
/// (e.g. the thread exited) and never throws — balancers must tolerate
/// threads racing with them.
bool set_affinity(pid_t tid, const CpuSet& set);

/// sched_getaffinity; returns an empty set on failure.
CpuSet get_affinity(pid_t tid);

/// CPU the calling thread is currently executing on.
int current_cpu();

/// Number of online CPUs on this machine.
int online_cpus();

}  // namespace speedbal::native
