#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "perturb/fault_injection.hpp"

namespace speedbal::native {

/// CPU-time sample of one thread, read from /proc/<pid>/task/<tid>/stat.
/// The real speedbalancer uses the taskstats netlink interface (Section
/// 5.2); /proc/stat carries the same utime/stime counters and needs no
/// privileges, so this implementation reads those.
struct TaskTimes {
  pid_t tid = 0;
  long utime_ticks = 0;   ///< User-mode jiffies.
  long stime_ticks = 0;   ///< Kernel-mode jiffies.
  int cpu = -1;            ///< Processor the thread last ran on.
  char state = '?';        ///< R, S, D, Z, T, ...

  long total_ticks() const { return utime_ticks + stime_ticks; }
};

/// Parse a /proc stat line. Robust against comm fields that contain spaces
/// or parentheses (fields are located after the *last* ')'). Returns
/// nullopt on malformed input.
std::optional<TaskTimes> parse_stat_line(const std::string& line);

/// Procfs reader with an injectable root so tests can run against a
/// synthetic /proc tree, and an optional fault-injection shim exercising
/// the readers' retry/degradation paths. Transient injected read failures
/// (EINTR/EAGAIN) are retried up to `max_read_attempts` times; permanent
/// ones surface as a failed read (nullopt), counted in `read_failures`.
class Procfs {
 public:
  explicit Procfs(std::string root = "/proc") : root_(std::move(root)) {}

  Procfs(const Procfs& o)
      : root_(o.root_),
        inject_(o.inject_),
        max_read_attempts_(o.max_read_attempts_),
        read_failures_(o.read_failures_.load()) {}
  Procfs& operator=(const Procfs& o) {
    root_ = o.root_;
    inject_ = o.inject_;
    max_read_attempts_ = o.max_read_attempts_;
    read_failures_.store(o.read_failures_.load());
    return *this;
  }

  /// Route every stat read through this injector (null disables).
  void set_fault_injector(perturb::FaultInjector* inj) { inject_ = inj; }
  void set_max_read_attempts(int n) { max_read_attempts_ = n > 0 ? n : 1; }

  /// Stat reads that failed permanently (after retries) so far; balancers
  /// compare across a sweep to detect incomplete samples.
  std::int64_t read_failures() const { return read_failures_.load(); }

  /// Thread ids of a process (the /proc/<pid>/task directory). Empty if the
  /// process is gone.
  std::vector<pid_t> tids(pid_t pid) const;

  /// Read one thread's CPU times; nullopt if it exited.
  std::optional<TaskTimes> task_times(pid_t pid, pid_t tid) const;

  /// All threads' times in one sweep.
  std::vector<TaskTimes> all_task_times(pid_t pid) const;

  /// Whether the process is still alive (its /proc directory exists).
  bool alive(pid_t pid) const;

  /// Kernel clock ticks per second (USER_HZ); used to convert jiffies.
  static long ticks_per_second();

 private:
  std::string root_;
  perturb::FaultInjector* inject_ = nullptr;
  int max_read_attempts_ = 3;
  mutable std::atomic<std::int64_t> read_failures_{0};
};

}  // namespace speedbal::native
