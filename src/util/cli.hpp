#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace speedbal {

/// Tiny command-line flag parser shared by the tools and bench binaries.
/// Accepts "--name=value" and bare "--name" (boolean true); everything else
/// is collected as a positional argument. Unknown flags are kept (callers
/// decide whether to reject them via `unknown()`).
class Cli {
 public:
  Cli(int argc, const char* const* argv,
      std::vector<std::string> known_flags = {});

  bool has(std::string_view name) const;
  std::string get(std::string_view name, std::string_view def = "") const;
  std::int64_t get_int(std::string_view name, std::int64_t def) const;
  double get_double(std::string_view name, double def) const;
  bool get_bool(std::string_view name, bool def = false) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags that were supplied but not in the known set (empty known set
  /// means everything is considered known).
  std::vector<std::string> unknown() const;

 private:
  std::map<std::string, std::string, std::less<>> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> known_;
};

}  // namespace speedbal
