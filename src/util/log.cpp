#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/time.hpp"

namespace speedbal {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SPEEDBAL_LOG");
  if (env == nullptr) return LogLevel::Warn;
  if (std::strcmp(env, "trace") == 0) return LogLevel::Trace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  return LogLevel::Warn;
}

std::atomic<LogLevel> g_level{initial_level()};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

std::string format_time(SimTime t) {
  char buf[64];
  if (t < 0) return "never";
  if (t < kMsec) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  } else if (t < kSec) {
    std::snprintf(buf, sizeof(buf), "%.2fms", to_msec(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", to_sec(t));
  }
  return buf;
}

}  // namespace speedbal
