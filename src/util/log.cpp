#include "util/log.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#ifdef __linux__
#include <sys/syscall.h>
#endif

#include "util/time.hpp"

namespace speedbal {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("SPEEDBAL_LOG");
  if (env == nullptr) return LogLevel::Warn;
  return parse_log_level(env).value_or(LogLevel::Warn);
}

std::atomic<LogLevel> g_level{initial_level()};
std::atomic<int> g_fd{2};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
  }
  return "?";
}

long current_tid() {
#ifdef __linux__
  static thread_local const long tid = static_cast<long>(syscall(SYS_gettid));
  return tid;
#else
  static std::atomic<long> next{1};
  static thread_local const long tid = next.fetch_add(1);
  return tid;
#endif
}

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "trace") return LogLevel::Trace;
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  return std::nullopt;
}

int set_log_fd(int fd) { return g_fd.exchange(fd); }

std::string format_log_line(LogLevel level, std::string_view msg) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);

  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "%02d:%02d:%02d.%03d [%ld] %s ",
                tm.tm_hour, tm.tm_min, tm.tm_sec, static_cast<int>(ms),
                current_tid(), level_name(level));

  std::string line;
  line.reserve(sizeof(prefix) + msg.size() + 1);
  line += prefix;
  line += msg;
  line += '\n';
  return line;
}

void log_message(LogLevel level, const std::string& msg) {
  const std::string line = format_log_line(level, msg);
  // One write(2) per line: POSIX guarantees writes to a pipe of up to
  // PIPE_BUF bytes are atomic, and terminal/file writes from concurrent
  // threads do not interleave within a single call.
  const int fd = g_fd.load(std::memory_order_relaxed);
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // Logging must never take the process down.
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string format_time(SimTime t) {
  char buf[64];
  if (t < 0) return "never";
  if (t < kMsec) {
    std::snprintf(buf, sizeof(buf), "%lldus", static_cast<long long>(t));
  } else if (t < kSec) {
    std::snprintf(buf, sizeof(buf), "%.2fms", to_msec(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", to_sec(t));
  }
  return buf;
}

}  // namespace speedbal
