#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace speedbal {

/// Escape a string for inclusion in a JSON string literal (quotes not
/// included).
std::string json_escape(std::string_view s);

/// Minimal streaming JSON writer used by the observability exporters and the
/// bench report emitters. Tracks nesting so commas and keys are placed
/// automatically; misuse (a bare value where a key is required) throws.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os) : os_(os) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit the key of the next object member.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::size_t v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& null();

  /// Convenience: key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

 private:
  void before_value();

  struct Frame {
    bool is_object = false;
    bool first = true;
    bool key_pending = false;
  };

  std::ostream& os_;
  std::vector<Frame> stack_;
};

/// Minimal owning JSON document with a recursive-descent parser. Used by the
/// exporter tests to verify that emitted traces/reports are valid JSON and
/// to round-trip counters; not a general-purpose library.
class JsonValue {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  /// Parse a complete JSON document; throws std::runtime_error on malformed
  /// input (including trailing garbage).
  static JsonValue parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::Null; }

  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;

  /// Array access.
  const std::vector<JsonValue>& items() const;
  std::size_t size() const { return items().size(); }
  const JsonValue& operator[](std::size_t i) const { return items().at(i); }

  /// Object access. `find` returns nullptr when absent; `at` throws.
  const std::map<std::string, JsonValue>& members() const;
  const JsonValue* find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;

 private:
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> items_;
  std::map<std::string, JsonValue> members_;

  friend class JsonParser;
};

}  // namespace speedbal
