#pragma once

#include <cstdint>

namespace speedbal {

/// Deterministic, seedable pseudo-random generator (xoshiro256** with a
/// splitmix64 seeding sequence). All stochastic behaviour in the simulator
/// flows through explicitly seeded Rng instances so that every experiment is
/// reproducible run-to-run; there is no global RNG state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedba1u);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform_u64(std::uint64_t bound);

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Gaussian with the given mean and standard deviation (Box-Muller).
  double normal(double mean, double stddev);

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p);

  /// Derive an independent child generator; used to give each simulated
  /// component its own stream so event ordering does not perturb draws.
  Rng fork();

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace speedbal
