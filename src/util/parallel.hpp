#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace speedbal {

/// Default parallelism for experiment sweeps: the hardware concurrency,
/// overridable with SPEEDBAL_JOBS (useful under CI/sanitizers). At least 1.
int default_jobs();

/// Parse a --jobs=N style value: clamps to [1, 256]; 0 means default_jobs().
int resolve_jobs(int requested);

/// Seed for replica `rep` of a sweep run with base seed `base`. Every
/// execution path (sequential or parallel, any --jobs) derives replica
/// seeds through this one function so results are byte-identical across
/// execution modes.
inline std::uint64_t replica_seed(std::uint64_t base, int rep) {
  return base * 1000003ULL + static_cast<std::uint64_t>(rep) * 7919ULL + 1;
}

/// Bounded thread pool: a fixed set of workers draining a task queue.
/// Tasks must not throw (wrap and capture; see parallel_for).
class ThreadPool {
 public:
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void submit(std::function<void()> task);
  /// Block until the queue is empty and every worker is idle.
  void wait_idle();
  int size() const { return static_cast<int>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;   ///< Signals workers: work or stop.
  std::condition_variable idle_cv_;   ///< Signals wait_idle: drained.
  int active_ = 0;
  bool stop_ = false;
};

/// Run body(i) for every i in [0, n). `jobs <= 1` runs the plain
/// sequential loop on the calling thread (bit-for-bit today's behavior);
/// otherwise at most `jobs` pool workers execute iterations concurrently.
/// Iterations must be independent; any order may be observed. The first
/// exception thrown by an iteration is rethrown on the calling thread
/// after all iterations finish.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// Sweep-replica driver: run body(rep, replica_seed(base_seed, rep)) for
/// every rep in [0, repeats) under `jobs`-way parallelism. Callers index
/// output slots by `rep`, so results land in deterministic seed order no
/// matter which worker ran which replica.
void parallel_for_seeds(int jobs, int repeats, std::uint64_t base_seed,
                        const std::function<void(int, std::uint64_t)>& body);

}  // namespace speedbal
