#include "util/cli.hpp"

#include <algorithm>
#include <cstdlib>

namespace speedbal {

Cli::Cli(int argc, const char* const* argv, std::vector<std::string> known_flags)
    : known_(std::move(known_flags)) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const auto eq = arg.find('=');
      if (eq == std::string_view::npos) {
        flags_.emplace(std::string(arg.substr(2)), "true");
      } else {
        flags_.emplace(std::string(arg.substr(2, eq - 2)),
                       std::string(arg.substr(eq + 1)));
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

bool Cli::has(std::string_view name) const {
  return flags_.find(name) != flags_.end();
}

std::string Cli::get(std::string_view name, std::string_view def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? std::string(def) : it->second;
}

std::int64_t Cli::get_int(std::string_view name, std::int64_t def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Cli::get_double(std::string_view name, double def) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Cli::get_bool(std::string_view name, bool def) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> Cli::unknown() const {
  std::vector<std::string> out;
  if (known_.empty()) return out;
  for (const auto& [name, value] : flags_) {
    (void)value;
    if (std::find(known_.begin(), known_.end(), name) == known_.end())
      out.push_back(name);
  }
  return out;
}

}  // namespace speedbal
