#pragma once

#include <cstdint>
#include <string>

namespace speedbal {

/// Simulation time in microseconds. Signed so that deltas and "not yet"
/// sentinels (-1) are representable without casts.
using SimTime = std::int64_t;

inline constexpr SimTime kUsec = 1;
inline constexpr SimTime kMsec = 1000 * kUsec;
inline constexpr SimTime kSec = 1000 * kMsec;

/// No-time-yet sentinel (used for "never happened" timestamps).
inline constexpr SimTime kNever = -1;

constexpr SimTime usec(std::int64_t n) { return n * kUsec; }
constexpr SimTime msec(std::int64_t n) { return n * kMsec; }
constexpr SimTime sec(std::int64_t n) { return n * kSec; }

constexpr double to_sec(SimTime t) { return static_cast<double>(t) / kSec; }
constexpr double to_msec(SimTime t) { return static_cast<double>(t) / kMsec; }

/// Human-readable rendering, e.g. "12.5ms", "3.20s", "800us".
std::string format_time(SimTime t);

}  // namespace speedbal
