#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace speedbal {

/// Log severity; Trace is used for per-event simulator traces and is off by
/// default (it is extremely verbose).
enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global log threshold; messages below it are dropped. Initialized from the
/// SPEEDBAL_LOG environment variable (trace/debug/info/warn/error) if set,
/// otherwise Warn. Thread-safe to read; set only from single-threaded setup.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parse a level name ("trace".."error"); nullopt for anything else.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Core logging entry point. The full line — wall-clock timestamp, thread
/// id, severity, message — is assembled in one buffer and emitted as a
/// single write(2), so lines from concurrent threads (native balancer,
/// SPMD runtime) never interleave mid-line.
void log_message(LogLevel level, const std::string& msg);

/// Render the line exactly as log_message writes it (including the trailing
/// newline): "HH:MM:SS.mmm [tid] LEVEL message\n". Exposed for tests.
std::string format_log_line(LogLevel level, std::string_view msg);

/// Redirect log output to another file descriptor (tests capture through a
/// pipe); returns the previous fd. Default: 2 (stderr).
int set_log_fd(int fd);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace speedbal

/// Usage: SB_LOG(Info) << "migrated task " << id;
#define SB_LOG(severity)                                            \
  if (::speedbal::LogLevel::severity < ::speedbal::log_level()) {   \
  } else                                                            \
    ::speedbal::detail::LogLine(::speedbal::LogLevel::severity)
