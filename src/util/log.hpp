#pragma once

#include <sstream>
#include <string>

namespace speedbal {

/// Log severity; Trace is used for per-event simulator traces and is off by
/// default (it is extremely verbose).
enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4 };

/// Global log threshold; messages below it are dropped. Initialized from the
/// SPEEDBAL_LOG environment variable (trace/debug/info/warn/error) if set,
/// otherwise Warn. Thread-safe to read; set only from single-threaded setup.
LogLevel log_level();
void set_log_level(LogLevel level);

/// Core logging entry point (writes to stderr with a severity prefix).
void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace speedbal

/// Usage: SB_LOG(Info) << "migrated task " << id;
#define SB_LOG(severity)                                            \
  if (::speedbal::LogLevel::severity < ::speedbal::log_level()) {   \
  } else                                                            \
    ::speedbal::detail::LogLine(::speedbal::LogLevel::severity)
