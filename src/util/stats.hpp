#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace speedbal {

/// Streaming mean/variance accumulator (Welford's algorithm). Numerically
/// stable for long runs; used for per-thread speed accounting and for
/// multi-run experiment summaries.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a sample set, with the paper's "% variation" measure:
/// the ratio of the maximum to the minimum observation, expressed as a
/// percentage above 100 (e.g. runtimes [10s, 12s] -> 20% variation).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  /// max/min - 1, in percent; 0 when fewer than 2 samples or min == 0.
  double variation_pct() const;
};

/// Compute a Summary over the sample set (copies and sorts for the median).
Summary summarize(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation; xs need not be sorted.
double percentile(std::span<const double> xs, double p);

/// Relative improvement of `candidate` over `baseline` in percent, where
/// both are runtimes (lower is better): 100*(baseline/candidate - 1).
double improvement_pct(double baseline_runtime, double candidate_runtime);

}  // namespace speedbal
