#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace speedbal {

/// Streaming mean/variance accumulator (Welford's algorithm). Numerically
/// stable for long runs; used for per-thread speed accounting and for
/// multi-run experiment summaries.
class OnlineStats {
 public:
  void add(double x);
  void merge(const OnlineStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< Sample variance (n-1 denominator).
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One-shot summary of a sample set, with the paper's "% variation" measure:
/// the ratio of the maximum to the minimum observation, expressed as a
/// percentage above 100 (e.g. runtimes [10s, 12s] -> 20% variation).
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;

  /// max/min - 1, in percent; 0 when fewer than 2 samples or min == 0.
  double variation_pct() const;
};

/// Compute a Summary over the sample set (copies and sorts for the median).
Summary summarize(std::span<const double> xs);

/// p-th percentile (0..100) by linear interpolation; xs need not be sorted.
double percentile(std::span<const double> xs, double p);

/// Relative improvement of `candidate` over `baseline` in percent, where
/// both are runtimes (lower is better): 100*(baseline/candidate - 1).
double improvement_pct(double baseline_runtime, double candidate_runtime);

/// Fixed-footprint log-bucketed latency histogram: percentile queries over
/// millions of request latencies without storing samples. Values are
/// nanoseconds; each power of two is split into 32 linear sub-buckets, so a
/// recorded value lands in a bucket whose width is at most 1/32 (~3.1%) of
/// its magnitude — percentile error is bounded by that ratio. Values below
/// 32 ns are exact. The table is ~15 KB and merge is element-wise, so
/// per-shard histograms can be kept independently and combined at report
/// time.
class LatencyHistogram {
 public:
  /// Record one latency. Negative values clamp to 0; values beyond ~2^62 ns
  /// (a century) clamp to the top bucket.
  void record(std::int64_t ns);

  /// Combine another histogram into this one (per-shard -> global).
  void merge(const LatencyHistogram& other);

  std::int64_t count() const { return count_; }
  std::int64_t min() const { return count_ ? min_ : 0; }  ///< Exact, ns.
  std::int64_t max() const { return count_ ? max_ : 0; }  ///< Exact, ns.
  double mean() const;                                    ///< Exact, ns.

  /// p-th percentile (0..100) in nanoseconds, interpolated within the
  /// containing bucket and clamped to [min, max]; 0 when empty.
  double percentile(double p) const;

 private:
  static constexpr int kSubBits = 5;                  // 32 sub-buckets.
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kRows = 63 - kSubBits;         // Exponent rows.
  static constexpr int kNumBuckets = kSub + kRows * kSub;

  static int bucket_index(std::int64_t ns);
  /// Inclusive lower bound and width of bucket `i`.
  static std::int64_t bucket_lo(int i);
  static std::int64_t bucket_width(int i);

  std::array<std::int64_t, static_cast<std::size_t>(kNumBuckets)> buckets_{};
  std::int64_t count_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
  double sum_ = 0.0;
};

}  // namespace speedbal
