#include "util/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace speedbal {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Summary::variation_pct() const {
  if (count < 2 || min <= 0.0) return 0.0;
  return (max / min - 1.0) * 100.0;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(xs, 50.0);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double improvement_pct(double baseline_runtime, double candidate_runtime) {
  if (candidate_runtime <= 0.0) return 0.0;
  return (baseline_runtime / candidate_runtime - 1.0) * 100.0;
}

int LatencyHistogram::bucket_index(std::int64_t ns) {
  if (ns < kSub) return static_cast<int>(std::max<std::int64_t>(ns, 0));
  // Mantissa/exponent split: shift so the top kSubBits+1 bits remain, giving
  // a value in [kSub, 2*kSub) whose offset selects the linear sub-bucket.
  const int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(ns));
  const int row = msb - kSubBits;  // <= kRows - 1: an int64's msb is <= 62.
  const int sub = static_cast<int>((ns >> row) - kSub);
  return kSub + row * kSub + sub;
}

std::int64_t LatencyHistogram::bucket_lo(int i) {
  if (i < kSub) return i;
  const int row = (i - kSub) / kSub;
  const int sub = (i - kSub) % kSub;
  return static_cast<std::int64_t>(kSub + sub) << row;
}

std::int64_t LatencyHistogram::bucket_width(int i) {
  if (i < kSub) return 1;
  return std::int64_t{1} << ((i - kSub) / kSub);
}

void LatencyHistogram::record(std::int64_t ns) {
  ns = std::max<std::int64_t>(ns, 0);
  if (count_ == 0) {
    min_ = max_ = ns;
  } else {
    min_ = std::min(min_, ns);
    max_ = std::max(max_, ns);
  }
  ++count_;
  sum_ += static_cast<double>(ns);
  ++buckets_[static_cast<std::size_t>(bucket_index(ns))];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
  for (int i = 0; i < kNumBuckets; ++i)
    buckets_[static_cast<std::size_t>(i)] +=
        other.buckets_[static_cast<std::size_t>(i)];
}

double LatencyHistogram::mean() const {
  return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double LatencyHistogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  // Rank on the same convention as percentile(span): 0 -> min, 100 -> max.
  const double rank = p / 100.0 * static_cast<double>(count_ - 1);
  std::int64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const std::int64_t n = buckets_[static_cast<std::size_t>(i)];
    if (n == 0) continue;
    if (rank < static_cast<double>(seen + n)) {
      const std::int64_t width = bucket_width(i);
      // A unit-width bucket holds exactly one integer value.
      if (width == 1) return static_cast<double>(bucket_lo(i));
      // Interpolate position within the bucket's value range.
      const double frac =
          n > 1 ? (rank - static_cast<double>(seen)) / static_cast<double>(n)
                : 0.5;
      const double v = static_cast<double>(bucket_lo(i)) +
                       frac * static_cast<double>(width);
      return std::clamp(v, static_cast<double>(min_), static_cast<double>(max_));
    }
    seen += n;
  }
  return static_cast<double>(max_);
}

}  // namespace speedbal
