#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace speedbal {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double Summary::variation_pct() const {
  if (count < 2 || min <= 0.0) return 0.0;
  return (max / min - 1.0) * 100.0;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.min = acc.min();
  s.max = acc.max();
  s.median = percentile(xs, 50.0);
  return s;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double improvement_pct(double baseline_runtime, double candidate_runtime) {
  if (candidate_runtime <= 0.0) return 0.0;
  return (baseline_runtime / candidate_runtime - 1.0) * 100.0;
}

}  // namespace speedbal
