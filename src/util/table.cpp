#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/json.hpp"

namespace speedbal {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size())
        os << std::string(width[c] - row[c].size() + 2, ' ');
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c + 1 < width.size() ? 2 : 0);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void Table::write_json(JsonWriter& w) const {
  w.begin_array();
  for (const auto& row : rows_) {
    w.begin_object();
    for (std::size_t c = 0; c < row.size(); ++c) {
      w.key(headers_[c]);
      // Numeric cells become JSON numbers so downstream tooling can plot
      // them without re-parsing strings.
      const std::string& cell = row[c];
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (!cell.empty() && end == cell.c_str() + cell.size())
        w.value(v);
      else
        w.value(cell);
    }
    w.end_object();
  }
  w.end_array();
}

void print_heading(std::ostream& os, std::string_view title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace speedbal
