#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace speedbal {

int default_jobs() {
  if (const char* env = std::getenv("SPEEDBAL_JOBS")) {
    const int n = std::atoi(env);
    if (n > 0) return std::min(n, 256);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

int resolve_jobs(int requested) {
  if (requested <= 0) return default_jobs();
  return std::min(requested, 256);
}

ThreadPool::ThreadPool(int threads) {
  const int n = std::max(threads, 1);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to drain.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (jobs <= 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  const int width = static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(resolve_jobs(jobs)), n));
  std::atomic<std::size_t> next{0};
  std::mutex err_mu;
  std::exception_ptr first_error;
  ThreadPool pool(width);
  for (int w = 0; w < width; ++w) {
    pool.submit([&] {
      // Workers pull indices from a shared counter so uneven replica
      // runtimes still keep every worker busy.
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        try {
          body(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(err_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  pool.wait_idle();
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for_seeds(int jobs, int repeats, std::uint64_t base_seed,
                        const std::function<void(int, std::uint64_t)>& body) {
  if (repeats <= 0) return;
  parallel_for(jobs, static_cast<std::size_t>(repeats), [&](std::size_t rep) {
    const int r = static_cast<int>(rep);
    body(r, replica_seed(base_seed, r));
  });
}

}  // namespace speedbal
