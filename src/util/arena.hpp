#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace speedbal {

/// Bump allocator over chunked slabs. Frees nothing until reset(); reset()
/// retains the slabs, so a long-lived consumer (Metrics across runs) reaches
/// a high-water mark and then allocates from recycled memory only. Built for
/// the per-task growth lists the simulator appends to on every event —
/// interval accumulators, staged accounting — whose previous home in
/// std::vector hit the global allocator once per geometric growth step per
/// task per run.
class Arena {
 public:
  static constexpr std::size_t kDefaultSlabBytes = 64 * 1024;

  explicit Arena(std::size_t slab_bytes = kDefaultSlabBytes)
      : slab_bytes_(slab_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;
  Arena(Arena&&) = default;
  Arena& operator=(Arena&&) = default;

  /// Allocate `bytes` with `align` (a power of two <= alignof(max_align_t)).
  /// Requests larger than the slab size get a dedicated slab.
  void* allocate(std::size_t bytes, std::size_t align) {
    offset_ = (offset_ + align - 1) & ~(align - 1);
    if (active_ >= slabs_.size() || offset_ + bytes > slabs_[active_].size) {
      if (!next_slab(bytes)) return new_slab(bytes);
    }
    void* p = slabs_[active_].mem.get() + offset_;
    offset_ += bytes;
    total_allocated_ += bytes;
    return p;
  }

  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Rewind to empty, retaining every slab for reuse. Pointers previously
  /// handed out are invalidated (the owner must drop them first).
  void reset() {
    active_ = 0;
    offset_ = 0;
    total_allocated_ = 0;
  }

  /// Slabs currently owned (monotonic until destruction; a reused arena
  /// stops growing once the high-water mark is reached).
  std::size_t slab_count() const { return slabs_.size(); }
  /// Bytes handed out since construction or the last reset().
  std::size_t bytes_allocated() const { return total_allocated_; }

 private:
  struct Slab {
    std::unique_ptr<unsigned char[]> mem;
    std::size_t size = 0;
  };

  /// Advance to the next retained slab if it can hold `bytes`.
  bool next_slab(std::size_t bytes) {
    const std::size_t next = active_ < slabs_.size() ? active_ + 1 : active_;
    if (next >= slabs_.size() || bytes > slabs_[next].size) return false;
    active_ = next;
    offset_ = 0;
    return true;
  }

  void* new_slab(std::size_t bytes) {
    const std::size_t size = bytes > slab_bytes_ ? bytes : slab_bytes_;
    Slab s;
    s.mem = std::make_unique<unsigned char[]>(size);
    s.size = size;
    // Oversized slabs are inserted *before* the active slab so the bump
    // pointer keeps filling the regular slab it was on.
    if (size > slab_bytes_ && active_ < slabs_.size()) {
      slabs_.insert(slabs_.begin() + static_cast<std::ptrdiff_t>(active_),
                    std::move(s));
      total_allocated_ += bytes;
      return slabs_[active_++].mem.get();
    }
    slabs_.push_back(std::move(s));
    active_ = slabs_.size() - 1;
    offset_ = bytes;
    total_allocated_ += bytes;
    return slabs_[active_].mem.get();
  }

  std::vector<Slab> slabs_;
  std::size_t active_ = 0;
  std::size_t offset_ = 0;
  std::size_t slab_bytes_;
  std::size_t total_allocated_ = 0;
};

/// Minimal growable array of trivially-copyable elements whose storage lives
/// in an Arena. Growth allocates a fresh arena block and memcpys (the old
/// block is abandoned to the arena — bounded waste, zero free cost), so
/// appends never touch the global allocator. The owner passes the arena to
/// every mutating call; clear() drops the elements but keeps the block.
template <typename T>
class ArenaVector {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  ArenaVector() = default;

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void push_back(Arena& arena, const T& v) {
    if (size_ == cap_) grow(arena, size_ + 1);
    data_[size_++] = v;
  }

  /// Insert before `pos`, shifting the tail right (sorted-insert support).
  void insert(Arena& arena, std::size_t pos, const T& v) {
    if (size_ == cap_) grow(arena, size_ + 1);
    std::memmove(data_ + pos + 1, data_ + pos, (size_ - pos) * sizeof(T));
    data_[pos] = v;
    ++size_;
  }

  void clear() { size_ = 0; }

 private:
  void grow(Arena& arena, std::size_t need) {
    std::size_t cap = cap_ == 0 ? 8 : cap_ * 2;
    if (cap < need) cap = need;
    T* fresh = arena.allocate_array<T>(cap);
    if (size_ > 0) std::memcpy(fresh, data_, size_ * sizeof(T));
    data_ = fresh;
    cap_ = static_cast<std::uint32_t>(cap);
  }

  T* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = 0;
};

}  // namespace speedbal
