#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace speedbal {

/// Minimal aligned-column table printer for the benchmark harnesses. Every
/// bench binary prints the rows/series of one paper table or figure through
/// this so that output is uniform and grep-friendly. Also emits CSV for
/// downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);

  std::size_t rows() const { return rows_.size(); }

  /// Pretty-print with aligned columns and a rule under the header.
  void print(std::ostream& os) const;

  /// Comma-separated output (no quoting; cells must not contain commas).
  void print_csv(std::ostream& os) const;

  /// Emit as a JSON value through an in-progress writer: an array of
  /// objects, one per row, keyed by the column headers. Numeric-looking
  /// cells are emitted as numbers.
  void write_json(class JsonWriter& w) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a section heading used by the bench binaries ("== Figure 3 ==").
void print_heading(std::ostream& os, std::string_view title);

}  // namespace speedbal
