#include "util/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace speedbal {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// --- JsonWriter -----------------------------------------------------------

void JsonWriter::before_value() {
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (top.is_object) {
    if (!top.key_pending)
      throw std::logic_error("JsonWriter: value in object without key");
    top.key_pending = false;
    return;
  }
  if (!top.first) os_ << ',';
  top.first = false;
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back({/*is_object=*/true, /*first=*/true, /*key_pending=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || !stack_.back().is_object)
    throw std::logic_error("JsonWriter: end_object outside object");
  os_ << '}';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back({/*is_object=*/false, /*first=*/true, /*key_pending=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().is_object)
    throw std::logic_error("JsonWriter: end_array outside array");
  os_ << ']';
  stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (stack_.empty() || !stack_.back().is_object)
    throw std::logic_error("JsonWriter: key outside object");
  Frame& top = stack_.back();
  if (top.key_pending) throw std::logic_error("JsonWriter: duplicate key call");
  if (!top.first) os_ << ',';
  top.first = false;
  top.key_pending = true;
  os_ << '"' << json_escape(k) << "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  before_value();
  os_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    os_ << "null";  // JSON has no NaN/Inf.
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  os_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  os_ << "null";
  return *this;
}

// --- JsonValue parser -----------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON parse error at offset " +
                             std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.type_ = JsonValue::Type::String;
      v.str_ = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.type_ = JsonValue::Type::Bool;
      v.bool_ = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.type_ = JsonValue::Type::Bool;
      v.bool_ = false;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members_[std::move(key)] = parse_value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // Exporters only emit \u for control characters; decode the BMP
          // subset as UTF-8 without surrogate-pair handling.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    try {
      JsonValue v;
      v.type_ = JsonValue::Type::Number;
      std::size_t used = 0;
      v.num_ = std::stod(token, &used);
      if (used != token.size()) fail("bad number");
      return v;
    } catch (const std::logic_error&) {
      fail("bad number '" + token + "'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (type_ != Type::Bool) throw std::runtime_error("JSON: not a bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::Number) throw std::runtime_error("JSON: not a number");
  return num_;
}

std::int64_t JsonValue::as_int() const {
  return static_cast<std::int64_t>(as_number());
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::String) throw std::runtime_error("JSON: not a string");
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::Array) throw std::runtime_error("JSON: not an array");
  return items_;
}

const std::map<std::string, JsonValue>& JsonValue::members() const {
  if (type_ != Type::Object) throw std::runtime_error("JSON: not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const auto& m = members();
  const auto it = m.find(std::string(key));
  return it == m.end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  if (v == nullptr)
    throw std::runtime_error("JSON: missing key '" + std::string(key) + "'");
  return *v;
}

}  // namespace speedbal
