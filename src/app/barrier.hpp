#pragma once

#include "util/time.hpp"

namespace speedbal {

/// How a thread waits at a barrier (or any collective). The choice controls
/// run-queue membership, which is exactly what distinguishes the paper's
/// LOAD-SLEEP / LOAD-YIELD / polling configurations (Sections 3 and 6.2):
/// a yielding thread stays on the run queue and is counted by the Linux
/// queue-length balancer; a sleeping thread is removed, letting the kernel
/// pull work onto the idle core.
enum class WaitPolicy {
  Spin,       ///< Busy-poll; burns full timeslices (OMP KMP_BLOCKTIME=infinite).
  Yield,      ///< Poll + sched_yield (UPC and MPI default runtimes).
  Sleep,      ///< Poll for block_time, then block until released (Intel OpenMP
              ///< default: 200 ms block time).
  SleepPoll,  ///< usleep(1)-style: repeatedly block for a short period and
              ///< re-check (the paper's modified UPC runtime).
};

const char* to_string(WaitPolicy p);

/// Barrier configuration shared by every thread of an SPMD application.
struct BarrierConfig {
  WaitPolicy policy = WaitPolicy::Yield;
  /// Sleep policy: wall-clock spin time before blocking (KMP_BLOCKTIME).
  SimTime block_time = msec(200);
  /// SleepPoll policy: period of each short block.
  SimTime poll_period = msec(1);
  /// CPU cost of one barrier poll check (flag read + yield/usleep setup).
  SimTime poll_cost = usec(2);
};

}  // namespace speedbal
