#pragma once

namespace speedbal {

/// Fractional work-partitioning hook for SPMD phases: when attached to an
/// SpmdAppSpec, each thread's per-phase work becomes
/// `thread_share(i, n) * n * work_per_phase_us` instead of the uniform (or
/// thread_skew-shaped) split — total phase work is unchanged, only its
/// distribution moves. Implementations (hetero::ShareBalancer) repartition
/// between barriers from measured per-core speed; the SPMD app re-queries at
/// every release, so a share change takes effect on the next phase.
class PhasePartitioner {
 public:
  virtual ~PhasePartitioner() = default;

  /// Fraction of one phase's total work assigned to thread `thread_index`
  /// of `nthreads`. Implementations must return shares that sum to 1 over
  /// all threads and are safe to call before any measurement exists
  /// (uniform 1/n bootstrap).
  virtual double thread_share(int thread_index, int nthreads) = 0;
};

}  // namespace speedbal
