#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace speedbal {

/// A compute-intensive competitor that never yields or sleeps — the paper's
/// "cpu-hog" sharing experiment (Fig. 5): an unrelated task pinned to core 0
/// that permanently takes half that core.
class CpuHog : public TaskClient {
 public:
  explicit CpuHog(Simulator& sim, std::string name = "cpu-hog");

  /// Start the hog; when `pin_core` is set the task is pinned there.
  void launch(std::optional<CoreId> pin_core);
  void stop();

  Task* task() const { return task_; }
  void on_work_complete(Simulator& sim, Task& task) override;

 private:
  Simulator& sim_;
  std::string name_;
  Task* task_ = nullptr;
};

/// Parameters of the make-like workload: a parallel build (make -j) that
/// keeps `concurrency` jobs in flight; each job alternates CPU bursts with
/// short I/O sleeps and exits after a few bursts, to be replaced by the
/// next job, until `total_jobs` have run (Fig. 6 sharing experiment).
struct MakeSpec {
  std::string name = "make";
  int concurrency = 16;  ///< The -j level.
  int total_jobs = 200;  ///< Compilations in the build.
  double burst_mean_us = 400'000.0;  ///< CPU burst per step (cc1 runs for
                                     ///< a second or more per file).
  double burst_jitter = 0.5;         ///< Relative uniform spread.
  int bursts_per_job = 3;            ///< CPU bursts per compilation.
  SimTime io_sleep = msec(5);        ///< Blocked I/O between bursts.
  double mem_footprint_kb = 8192.0;  ///< Compiler working set.
  double mem_intensity = 0.2;
  double mem_bw_demand = 0.2;
};

/// Multiprogrammed "realistic application" load: spawns short-lived
/// subprocesses the way a parallel build does. Jobs start with Linux fork
/// placement and are balanced by whatever kernel policy is attached.
class MakeWorkload : public TaskClient {
 public:
  MakeWorkload(Simulator& sim, MakeSpec spec);

  /// Start the first `concurrency` jobs, restricted to `cores`.
  void launch(std::span<const CoreId> cores);

  bool finished() const { return jobs_finished_ >= spec_.total_jobs; }
  int jobs_finished() const { return jobs_finished_; }

  void on_work_complete(Simulator& sim, Task& task) override;

 private:
  struct JobState {
    int bursts_left = 0;
  };

  void spawn_job();
  double burst_work();

  Simulator& sim_;
  MakeSpec spec_;
  Rng rng_{0};
  std::uint64_t mask_ = ~0ULL;
  std::map<TaskId, JobState> jobs_;
  int jobs_started_ = 0;
  int jobs_finished_ = 0;
};

}  // namespace speedbal
