#include "app/spmd.hpp"

#include <algorithm>
#include <stdexcept>

namespace speedbal {

SpmdApp::SpmdApp(Simulator& sim, SpmdAppSpec spec)
    : sim_(sim), spec_(std::move(spec)), rng_(0) {
  if (spec_.nthreads < 1 || spec_.phases < 1)
    throw std::invalid_argument("SpmdApp: nthreads and phases must be >= 1");
}

void SpmdApp::launch(Placement placement, std::span<const CoreId> cores) {
  if (!threads_.empty()) throw std::logic_error("SpmdApp::launch called twice");
  if (cores.empty()) throw std::invalid_argument("SpmdApp: no cores");
  cores_.assign(cores.begin(), cores.end());
  rng_ = sim_.rng().fork();
  start_time_ = last_release_ = sim_.now();

  std::uint64_t mask = 0;
  for (CoreId c : cores_) mask |= 1ULL << c;

  for (int i = 0; i < spec_.nthreads; ++i) {
    TaskSpec ts;
    ts.name = spec_.name + "." + std::to_string(i);
    ts.client = this;
    ts.mem_footprint_kb = spec_.mem_footprint_kb;
    ts.mem_intensity = spec_.mem_intensity;
    ts.mem_bw_demand = spec_.mem_bw_demand;
    Task& t = sim_.create_task(ts);
    threads_.push_back(&t);
    ThreadState st;
    st.index = i;
    states_.push_back(st);
    sim_.assign_work(t, phase_work(i));
    if (placement == Placement::RoundRobin) {
      sim_.start_task_on(t, cores_[static_cast<std::size_t>(i) % cores_.size()],
                         mask);
    } else {
      sim_.start_task(t, mask);
    }
  }
}

double SpmdApp::phase_work(int thread_index) {
  double w = spec_.work_per_phase_us;
  if (spec_.partitioner != nullptr) {
    w = spec_.partitioner->thread_share(thread_index, spec_.nthreads) *
        spec_.nthreads * spec_.work_per_phase_us;
  } else if (spec_.thread_skew != 0.0 && spec_.nthreads > 1) {
    const double pos =
        static_cast<double>(thread_index) / (spec_.nthreads - 1) - 0.5;
    w *= 1.0 + spec_.thread_skew * pos;
  }
  if (spec_.work_jitter > 0.0)
    w *= 1.0 + rng_.uniform(-spec_.work_jitter, spec_.work_jitter);
  return std::max(w, 1.0);
}

void SpmdApp::on_work_complete(Simulator& sim, Task& task) {
  auto it = std::find(threads_.begin(), threads_.end(), &task);
  if (it == threads_.end()) throw std::logic_error("SpmdApp: unknown task");
  auto& st = states_[static_cast<std::size_t>(it - threads_.begin())];

  if (st.in_barrier) {
    // A SleepPoll check ran and the barrier is still closed: poll again.
    sim.assign_work(task, static_cast<double>(spec_.barrier.poll_cost));
    sim.sleep_task_for(task, spec_.barrier.poll_period);
    return;
  }
  arrive(sim, task);
}

void SpmdApp::arrive(Simulator& sim, Task& task) {
  auto it = std::find(threads_.begin(), threads_.end(), &task);
  auto& st = states_[static_cast<std::size_t>(it - threads_.begin())];
  st.in_barrier = true;
  st.generation = generation_;
  ++arrived_;
  if (arrived_ == spec_.nthreads) {
    release(sim);
    return;
  }

  switch (spec_.barrier.policy) {
    case WaitPolicy::Spin:
      sim.set_wait_mode(task, WaitMode::Spin);
      break;
    case WaitPolicy::Yield:
      sim.set_wait_mode(task, WaitMode::Yield);
      break;
    case WaitPolicy::Sleep: {
      if (spec_.barrier.block_time <= 0) {
        sim.sleep_task(task);
        break;
      }
      // Poll for block_time, then block (Intel OpenMP KMP_BLOCKTIME).
      sim.set_wait_mode(task, WaitMode::Spin);
      const std::size_t idx = static_cast<std::size_t>(it - threads_.begin());
      const std::uint64_t gen = generation_;
      Task* tp = &task;
      sim.schedule_after(spec_.barrier.block_time, [this, idx, gen, tp] {
        const auto& s = states_[idx];
        if (finished_ || !s.in_barrier || s.generation != gen) return;
        if (tp->state() == TaskState::Sleeping) return;
        sim_.sleep_task(*tp);
      });
      break;
    }
    case WaitPolicy::SleepPoll:
      // usleep(1)-style: block briefly, wake, re-check, block again.
      sim.assign_work(task, static_cast<double>(spec_.barrier.poll_cost));
      sim.sleep_task_for(task, spec_.barrier.poll_period);
      break;
  }
}

void SpmdApp::release(Simulator& sim) {
  ++generation_;
  arrived_ = 0;
  const SimTime now = sim.now();
  phase_times_.push_back(now - last_release_);
  last_release_ = now;
  const bool done = generation_ >= static_cast<std::uint64_t>(spec_.phases);

  for (std::size_t i = 0; i < threads_.size(); ++i) {
    states_[i].in_barrier = false;
    Task* t = threads_[i];
    if (done) {
      sim.finish_task(*t);
    } else {
      sim.assign_work(*t, phase_work(static_cast<int>(i)));
      if (t->state() == TaskState::Sleeping) sim.wake_task(*t);
    }
  }
  if (done) {
    completion_time_ = now;
    finished_ = true;
  }
}

}  // namespace speedbal
