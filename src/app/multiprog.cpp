#include "app/multiprog.hpp"

#include <algorithm>

namespace speedbal {

CpuHog::CpuHog(Simulator& sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void CpuHog::launch(std::optional<CoreId> pin_core) {
  TaskSpec ts;
  ts.name = name_;
  ts.client = this;
  task_ = &sim_.create_task(ts);
  sim_.assign_work(*task_, static_cast<double>(sec(1)));
  if (pin_core) {
    sim_.start_task_on(*task_, *pin_core, 1ULL << *pin_core);
  } else {
    sim_.start_task(*task_);
  }
}

void CpuHog::stop() {
  if (task_ != nullptr && task_->state() != TaskState::Finished)
    sim_.finish_task(*task_);
}

void CpuHog::on_work_complete(Simulator& sim, Task& task) {
  sim.assign_work(task, static_cast<double>(sec(1)));  // Hogs never stop.
}

MakeWorkload::MakeWorkload(Simulator& sim, MakeSpec spec)
    : sim_(sim), spec_(spec) {}

void MakeWorkload::launch(std::span<const CoreId> cores) {
  rng_ = sim_.rng().fork();
  mask_ = 0;
  for (CoreId c : cores) mask_ |= 1ULL << c;
  const int initial = std::min(spec_.concurrency, spec_.total_jobs);
  for (int i = 0; i < initial; ++i) spawn_job();
}

double MakeWorkload::burst_work() {
  return std::max(
      1.0, spec_.burst_mean_us *
               (1.0 + rng_.uniform(-spec_.burst_jitter, spec_.burst_jitter)));
}

void MakeWorkload::spawn_job() {
  if (jobs_started_ >= spec_.total_jobs) return;
  ++jobs_started_;
  TaskSpec ts;
  ts.name = spec_.name + ".job" + std::to_string(jobs_started_);
  ts.client = this;
  ts.mem_footprint_kb = spec_.mem_footprint_kb;
  ts.mem_intensity = spec_.mem_intensity;
  ts.mem_bw_demand = spec_.mem_bw_demand;
  Task& t = sim_.create_task(ts);
  jobs_[t.id()] = JobState{spec_.bursts_per_job};
  sim_.assign_work(t, burst_work());
  sim_.start_task(t, mask_);
}

void MakeWorkload::on_work_complete(Simulator& sim, Task& task) {
  auto& job = jobs_.at(task.id());
  if (--job.bursts_left > 0) {
    // Next compile step after a short blocking I/O (header reads, write-out).
    sim.assign_work(task, burst_work());
    sim.sleep_task_for(task, spec_.io_sleep);
    return;
  }
  sim.finish_task(task);
  jobs_.erase(task.id());
  ++jobs_finished_;
  spawn_job();  // make keeps -j jobs in flight.
}

}  // namespace speedbal
