#include "app/barrier.hpp"

namespace speedbal {

const char* to_string(WaitPolicy p) {
  switch (p) {
    case WaitPolicy::Spin: return "spin";
    case WaitPolicy::Yield: return "yield";
    case WaitPolicy::Sleep: return "sleep";
    case WaitPolicy::SleepPoll: return "sleep-poll";
  }
  return "?";
}

}  // namespace speedbal
