#pragma once

#include <span>
#include <string>
#include <vector>

#include "app/barrier.hpp"
#include "app/partition.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace speedbal {

/// Description of an SPMD application: `nthreads` threads each execute
/// `phases` phases of `work_per_phase_us` compute separated by barriers
/// (computation / barrier / computation ..., Section 3). The memory fields
/// feed the migration-cost and bandwidth models.
struct SpmdAppSpec {
  std::string name = "spmd";
  int nthreads = 1;
  int phases = 1;
  double work_per_phase_us = 1000.0;
  /// Per-(thread, phase) uniform work perturbation: work * (1 +/- jitter).
  double work_jitter = 0.0;
  /// Persistent application-level imbalance: thread i's work is scaled by
  /// 1 + thread_skew * (i/(n-1) - 1/2), keeping the mean unchanged (at
  /// skew=1 the heaviest thread carries 3x the lightest). Models irregular
  /// domain decompositions; the paper's Section 7 argues oversubscription
  /// plus speed balancing absorbs such imbalance automatically.
  double thread_skew = 0.0;
  BarrierConfig barrier;
  /// Optional fractional work-partitioning hook (the SHARE policy family):
  /// when set, thread i's base work for a phase is
  /// thread_share(i, n) * n * work_per_phase_us — total phase work is the
  /// same as the uniform split, but its distribution follows the
  /// partitioner; thread_skew is superseded, work_jitter still applies.
  /// Queried at every barrier release, so repartitions take effect on the
  /// next phase. Not owned; must outlive the app.
  PhasePartitioner* partitioner = nullptr;
  double mem_footprint_kb = 0.0;
  double mem_intensity = 0.0;
  double mem_bw_demand = 0.0;
};

/// An SPMD application running inside the Simulator. Implements the barrier
/// semantics for all four wait policies and records completion and
/// per-phase timing. One SpmdApp == one parallel job; several can share a
/// machine (multiprogrammed workloads).
class SpmdApp : public TaskClient {
 public:
  /// Initial thread distribution: what the kernel does at fork versus the
  /// round-robin pinning performed by speedbalancer / PINNED configs.
  enum class Placement { LinuxFork, RoundRobin };

  SpmdApp(Simulator& sim, SpmdAppSpec spec);

  /// Create and start all threads, restricted to `cores` (the experiment's
  /// taskset). Must be called exactly once.
  void launch(Placement placement, std::span<const CoreId> cores);

  const SpmdAppSpec& spec() const { return spec_; }
  const std::vector<Task*>& threads() const { return threads_; }
  std::vector<CoreId> cores() const { return cores_; }

  bool finished() const { return finished_; }
  SimTime start_time() const { return start_time_; }
  /// Time of the final barrier release (run completion); kNever until done.
  SimTime completion_time() const { return completion_time_; }
  SimTime elapsed() const {
    return completion_time_ == kNever ? kNever : completion_time_ - start_time_;
  }
  /// Wall-clock duration of each completed phase (barrier-to-barrier).
  const std::vector<SimTime>& phase_times() const { return phase_times_; }

  void on_work_complete(Simulator& sim, Task& task) override;

 private:
  struct ThreadState {
    int index = -1;
    bool in_barrier = false;
    std::uint64_t generation = 0;  ///< Barrier generation it is waiting on.
  };

  double phase_work(int thread_index);
  void arrive(Simulator& sim, Task& task);
  void release(Simulator& sim);
  void give_work_or_finish(Simulator& sim, Task& task);

  Simulator& sim_;
  SpmdAppSpec spec_;
  Rng rng_;
  std::vector<Task*> threads_;
  std::vector<ThreadState> states_;
  std::vector<CoreId> cores_;

  int arrived_ = 0;
  std::uint64_t generation_ = 0;  ///< Completed barrier count.
  SimTime start_time_ = 0;
  SimTime last_release_ = 0;
  SimTime completion_time_ = kNever;
  std::vector<SimTime> phase_times_;
  bool finished_ = false;
};

}  // namespace speedbal
