#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "topo/topology.hpp"
#include "util/time.hpp"

namespace speedbal {

class Simulator;
class Task;

using TaskId = int;

/// Scheduling state of a simulated task (Linux terminology: a "task" is any
/// thread or process; the kernel does not distinguish them).
enum class TaskState {
  Runnable,  ///< On a run queue, not currently executing.
  Running,   ///< Currently executing on its core.
  Sleeping,  ///< Blocked; off every run queue.
  Parked,    ///< Dequeued by a scheduler policy (DWRR expired queue), not
             ///< blocked by the application; still wants to run.
  Finished,  ///< Exited.
};

const char* to_string(TaskState s);

/// What a task does when its assigned work runs out while it is waiting for
/// other threads (barrier semantics; see Section 3 of the paper). The mode
/// determines run-queue membership, which is what the queue-length-based
/// Linux balancer observes.
enum class WaitMode {
  None,   ///< Not waiting: executing assigned work.
  Spin,   ///< Busy-wait: burns full timeslices, stays on the run queue.
  Yield,  ///< Poll + sched_yield: stays on the run queue, cedes the CPU.
};

const char* to_string(WaitMode m);

/// Consumer of task lifecycle callbacks; the application layer implements
/// this to drive phases and barriers.
class TaskClient {
 public:
  virtual ~TaskClient() = default;

  /// Called when the task finishes its currently assigned work. The client
  /// must either assign new work, put the task to sleep, set a wait mode, or
  /// finish the task (via the Simulator API).
  virtual void on_work_complete(Simulator& sim, Task& task) = 0;
};

/// Construction-time parameters of a task.
struct TaskSpec {
  std::string name;
  TaskClient* client = nullptr;  ///< May be null for fire-and-forget tasks.
  double weight = 1.0;           ///< CFS load weight (nice level analogue).
  /// Resident set size; determines the cache-refill cost of a migration.
  double mem_footprint_kb = 0.0;
  /// Fraction of execution time that is memory-bound (0 = pure compute).
  /// Scales both the NUMA remote-access penalty and bandwidth contention.
  double mem_intensity = 0.0;
  /// Fraction of one contention domain's memory bandwidth demanded while
  /// running (0 = none). Drives the bandwidth-saturation model.
  double mem_bw_demand = 0.0;
};

/// Struct-of-arrays backing store for the task fields the dispatch loop
/// touches on every event — state transitions, vruntime charging, work and
/// warmup decrement, exec accumulation. Dense parallel vectors indexed by
/// TaskId (ids are handed out sequentially from 0), so a balancer scanning
/// one field across all tasks walks one contiguous array instead of pulling
/// a whole Task object per element. Cold configuration and rarely-touched
/// fields stay inside Task; its accessors hide the split.
class TaskStore {
 public:
  /// Ensure slots [0, n) exist, default-initializing new ones.
  void grow_to(std::size_t n) {
    if (n <= state.size()) return;
    state.resize(n, TaskState::Sleeping);
    wait_mode.resize(n, WaitMode::None);
    core.resize(n, CoreId{-1});
    remaining_work.resize(n, 0.0);
    warmup_remaining.resize(n, 0.0);
    warmup_time.resize(n, 0.0);
    total_exec.resize(n, SimTime{0});
    vruntime.resize(n, SimTime{0});
    last_ran.resize(n, kNever);
  }

  std::size_t size() const { return state.size(); }

  std::vector<TaskState> state;
  std::vector<WaitMode> wait_mode;
  std::vector<CoreId> core;
  std::vector<double> remaining_work;
  std::vector<double> warmup_remaining;
  std::vector<double> warmup_time;
  std::vector<SimTime> total_exec;
  std::vector<SimTime> vruntime;  ///< Queue-relative while enqueued.
  std::vector<SimTime> last_ran;
};

/// A simulated schedulable entity. All mutation goes through the Simulator;
/// other code reads the public accessors. Hot per-event fields live in the
/// TaskStore the task was created against (the Simulator owns one for all
/// its tasks); the accessors below read through to it, so callers see no
/// difference from the old all-in-one layout.
class Task {
 public:
  Task(TaskId id, TaskSpec spec, TaskStore& store)
      : id_(id), spec_(std::move(spec)), store_(&store) {
    store_->grow_to(static_cast<std::size_t>(id) + 1);
  }

  TaskId id() const { return id_; }
  const std::string& name() const { return spec_.name; }
  const TaskSpec& spec() const { return spec_; }

  TaskState state() const { return store_->state[uid()]; }
  WaitMode wait_mode() const { return store_->wait_mode[uid()]; }
  /// Core whose run queue the task is on (or last ran on while sleeping).
  CoreId core() const { return store_->core[uid()]; }
  /// NUMA node where the task's memory was first allocated (first touch).
  int home_numa() const { return home_numa_; }

  /// Affinity bitmask over cores (bit i = allowed on core i).
  std::uint64_t allowed_mask() const { return allowed_; }
  bool allowed_on(CoreId c) const { return (allowed_ >> c) & 1u; }
  /// True once an external balancer pinned this task via sched_setaffinity;
  /// the Linux load balancer will then never move it (Section 5.2).
  bool hard_pinned() const { return hard_pinned_; }

  /// Remaining assigned work, in microseconds at nominal (1.0) speed.
  double remaining_work() const { return store_->remaining_work[uid()]; }
  /// Pending cache-refill overhead from the last migration, in microseconds
  /// at nominal speed; consumed before real work makes progress.
  double warmup_remaining() const { return store_->warmup_remaining[uid()]; }
  /// Cumulative wall time (fractional µs) spent burning warmup — the
  /// migration stall cost actually paid so far, used by request-span
  /// attribution to separate cache-refill time from real execution.
  double warmup_time() const { return store_->warmup_time[uid()]; }

  SimTime total_exec() const { return store_->total_exec[uid()]; }
  /// Accumulated time spent Sleeping (closed intervals only; an in-progress
  /// sleep is charged at wake — use Simulator::total_sleep for a live view).
  SimTime total_sleep() const { return total_sleep_; }
  /// Instant the current sleep began (kNever when not sleeping).
  SimTime sleep_since() const { return sleep_since_; }
  SimTime vruntime() const { return store_->vruntime[uid()]; }
  int migrations() const { return migrations_; }
  SimTime last_migration() const { return last_migration_; }
  /// Last instant the task executed; drives the Linux "cache hot" heuristic.
  SimTime last_ran() const { return store_->last_ran[uid()]; }

  static constexpr double kInfiniteWork = std::numeric_limits<double>::infinity();

 private:
  friend class Simulator;
  friend class CfsQueue;

  std::size_t uid() const { return static_cast<std::size_t>(id_); }

  // Mutable access to the hot store fields, for the befriended scheduler
  // core (the call-site spelling changed from `t.field_` to `t.field_ref()`
  // when the fields moved out; semantics are identical).
  TaskState& state_ref() { return store_->state[uid()]; }
  WaitMode& wait_mode_ref() { return store_->wait_mode[uid()]; }
  CoreId& core_ref() { return store_->core[uid()]; }
  double& remaining_work_ref() { return store_->remaining_work[uid()]; }
  double& warmup_remaining_ref() { return store_->warmup_remaining[uid()]; }
  double& warmup_time_ref() { return store_->warmup_time[uid()]; }
  SimTime& total_exec_ref() { return store_->total_exec[uid()]; }
  SimTime& vruntime_ref() { return store_->vruntime[uid()]; }
  SimTime& last_ran_ref() { return store_->last_ran[uid()]; }

  TaskId id_;
  TaskSpec spec_;
  TaskStore* store_;

  // Cold / rarely-touched state (placement config, sleep bookkeeping).
  int home_numa_ = -1;
  std::uint64_t allowed_ = ~0ULL;
  bool hard_pinned_ = false;
  SimTime total_sleep_ = 0;
  SimTime sleep_since_ = kNever;
  int migrations_ = 0;
  SimTime last_migration_ = kNever;

  // Bookkeeping for sleep timeouts (sleep-poll barriers).
  std::uint64_t wake_seq_ = 0;
};

}  // namespace speedbal
