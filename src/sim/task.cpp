#include "sim/task.hpp"

namespace speedbal {

const char* to_string(TaskState s) {
  switch (s) {
    case TaskState::Runnable: return "runnable";
    case TaskState::Running: return "running";
    case TaskState::Sleeping: return "sleeping";
    case TaskState::Parked: return "parked";
    case TaskState::Finished: return "finished";
  }
  return "?";
}

const char* to_string(WaitMode m) {
  switch (m) {
    case WaitMode::None: return "none";
    case WaitMode::Spin: return "spin";
    case WaitMode::Yield: return "yield";
  }
  return "?";
}

}  // namespace speedbal
