#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/time.hpp"

namespace speedbal {

/// Move-only callable with small-buffer storage, sized so every hot-path
/// event the Simulator schedules (run-stop, preemption, balancer ticks —
/// lambdas capturing a pointer plus a couple of scalars) fits inline.
/// Larger callables fall back to a single heap allocation; std::function
/// additionally type-erases copyability and (on common ABIs) spills any
/// capture beyond 16 trivially-copyable bytes, which made the event loop
/// allocate on nearly every scheduled stop. Trivially-copyable callables
/// (the overwhelmingly common case) are flagged so moves are a branch plus
/// a memcpy instead of an indirect call.
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 48;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function.
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &inline_ops<Fn>;
    } else {
      *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
      ops_ = &heap_ops<Fn>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  void operator()() { ops_->invoke(buf_); }
  explicit operator bool() const { return ops_ != nullptr; }

  void reset() {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-construct into `dst` from `src`, destroying `src`. Unused (and
    /// skipped) when `trivial`.
    void (*relocate)(void* src, void* dst);
    void (*destroy)(void*);
    /// Trivially copyable and destructible: relocation is memcpy, no
    /// destructor call needed.
    bool trivial;
  };

  template <typename Fn>
  static constexpr Ops inline_ops = {
      [](void* p) { (*static_cast<Fn*>(p))(); },
      [](void* src, void* dst) {
        Fn* f = static_cast<Fn*>(src);
        ::new (dst) Fn(std::move(*f));
        f->~Fn();
      },
      [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>};

  template <typename Fn>
  static constexpr Ops heap_ops = {
      [](void* p) { (**static_cast<Fn**>(p))(); },
      [](void* src, void* dst) {
        *static_cast<Fn**>(dst) = *static_cast<Fn**>(src);
      },
      [](void* p) { delete *static_cast<Fn**>(p); },
      // The owning pointer relocates by copy but must not be double-freed,
      // so heap callables always take the indirect path.
      false};

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->trivial)
        std::memcpy(buf_, other.buf_, kInlineSize);
      else
        ops_->relocate(other.buf_, buf_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Handle to a scheduled event; valid until the event fires or is cancelled.
/// Holds the slot index so cancellation is O(log n) without a lookup; the
/// (time, seq) pair doubles as the liveness check (a recycled slot carries a
/// different seq).
struct EventHandle {
  SimTime time = kNever;
  std::uint64_t seq = 0;
  std::uint32_t slot = 0;
  bool valid() const { return time >= 0; }
};

/// Deterministic discrete-event queue ordered by (time, seq), so events at
/// equal times fire in insertion order and simulations stay bit-for-bit
/// reproducible for a given seed.
///
/// Two tiers. Near-future events (the dispatch/stop/preempt churn that is
/// ~all of a simulation) go straight into an indexed 4-ary min-heap whose
/// callables live in a freelist-recycled slot table — steady-state
/// scheduling allocates nothing. Far-future events (perturb timelines,
/// diurnal arrival schedules, long sleeps) land in a timing wheel: a ring
/// of per-bucket lists plus an overflow list beyond the ring's horizon.
/// A bucket-aligned watermark separates the tiers — every wheel entry's
/// time is >= watermark_ — and the pop path promotes whole buckets into
/// the heap (advancing the watermark) before it ever pops a heap entry at
/// or past the watermark. Promotion therefore lands every wheel entry in
/// the heap before any equal-or-later event fires, and the heap's
/// (time, seq) order restores the global total order among equal
/// timestamps. Far events thus cost O(1) to schedule and skip the heap
/// entirely until their bucket comes due, instead of sifting through
/// every near-term pop in between.
///
/// Cancellation in the wheel is lazy: the slot is released immediately and
/// the stale ring entry is dropped at promotion by its seq mismatch (seqs
/// are never reused, so a recycled slot cannot false-match).
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventHandle schedule(SimTime t, EventFn fn) {
    if (t < now_) throw std::invalid_argument("EventQueue: schedule in the past");
    const std::uint32_t slot = alloc_slot();
    const std::uint64_t seq = next_seq_++;
    Slot& s = slots_[slot];
    s.fn = std::move(fn);
    s.seq = seq;
    insert_entry({t, seq, slot});
    return EventHandle{t, seq, slot};
  }

  /// Cancel a pending event; no-op if it already fired or was cancelled.
  void cancel(EventHandle h) {
    if (!h.valid() || h.slot >= slots_.size()) return;
    Slot& s = slots_[h.slot];
    if (s.seq != h.seq) return;  // Already fired, cancelled, or recycled.
    if (slot_pos_[h.slot] == kInWheel)
      --wheel_count_;  // Ring/overflow entry goes stale; dropped at promotion.
    else
      heap_erase(slot_pos_[h.slot]);
    s.fn.reset();
    s.seq = 0;
    free_slots_.push_back(h.slot);
  }

  /// Move a live event to a new time, reusing its slot and callable — the
  /// cheap form of cancel + schedule for the per-dispatch stop-event churn
  /// (no callable move, no slot recycle, and an in-place heap reposition
  /// when both times are near). `h` must be live (not fired, not
  /// cancelled); semantics are identical to cancel(h) followed by
  /// schedule(t, same-fn), including the fresh position in the seq order.
  EventHandle reschedule(EventHandle h, SimTime t);

  /// Pop and execute the earliest event; returns false when empty.
  bool run_next() {
    if (!prepare_top()) return false;
    const HeapEntry top = heap_[0];
    now_ = top.time;
    Slot& s = slots_[top.slot];
    // Move the callable out and release the slot before invoking, so the
    // handler can schedule or cancel events (including at the same
    // timestamp) without touching a live slot.
    EventFn fn = std::move(s.fn);
    s.seq = 0;
    pop_root();
    free_slots_.push_back(top.slot);
    ++executed_;
    fn();
    return true;
  }

  /// True when no events are pending (either tier).
  bool empty() const { return heap_.empty() && wheel_count_ == 0; }
  std::size_t size() const { return heap_.size() + wheel_count_; }

  /// Current simulation time (time of the last event popped).
  SimTime now() const { return now_; }

  /// Time of the earliest pending event, or kNever if empty. May promote
  /// wheel buckets into the heap to find it (hence non-const).
  SimTime next_time() { return prepare_top() ? heap_[0].time : kNever; }

  /// Run events until simulation time would exceed `t`; leaves now() == t.
  void run_until(SimTime t);

  /// Run until the queue is empty.
  void run_all();

  /// Total events executed so far (monotonic; for throughput accounting).
  std::uint64_t executed() const { return executed_; }

  /// Events currently parked in the wheel/overflow tier (test hook).
  std::size_t wheel_size() const { return wheel_count_; }

 private:
  static constexpr std::size_t kArity = 4;

  /// Wheel bucket width: 2^12 us ~= 4 ms. One ring revolution covers
  /// kNumBuckets * 4 ms ~= 1 s; anything further sits in the overflow list
  /// and is re-bucketed once per revolution.
  static constexpr int kBucketBits = 12;
  static constexpr SimTime kBucketWidth = SimTime{1} << kBucketBits;
  static constexpr std::size_t kNumBuckets = 256;  // power of two
  static constexpr std::size_t kBucketMask = kNumBuckets - 1;
  /// Events at least this far ahead of now() are wheel candidates; nearer
  /// ones always take the heap (the common case, kept zero-overhead).
  static constexpr SimTime kFarHorizon = 16 * kBucketWidth;  // ~65 ms
  /// slot_pos_ sentinel: the slot's entry lives in the wheel, not the heap.
  static constexpr std::uint32_t kInWheel = 0xFFFFFFFFu;

  struct HeapEntry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  struct Slot {
    EventFn fn;
    std::uint64_t seq = 0;  ///< Seq of the occupying event; 0 = free.
  };

  static bool before(const HeapEntry& a, const HeapEntry& b) {
    return a.time != b.time ? a.time < b.time : a.seq < b.seq;
  }

  std::uint32_t alloc_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const auto slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    slot_pos_.push_back(0);
    return slot;
  }

  /// Route a new entry to the heap or the wheel tier.
  void insert_entry(const HeapEntry& e) {
    if (e.time - now_ >= kFarHorizon && e.time >= watermark_) {
      wheel_insert(e);
      return;
    }
    heap_push(e);
  }

  void heap_push(const HeapEntry& e) {
    heap_.push_back(e);
    slot_pos_[e.slot] = static_cast<std::uint32_t>(heap_.size() - 1);
    sift_up(heap_.size() - 1);
  }

  /// Park `e` in the ring bucket covering its time, or the overflow list
  /// when it is beyond the ring's horizon. Precondition: e.time >= watermark_.
  void wheel_insert(const HeapEntry& e);

  /// Ensure heap_[0] is the globally earliest pending event, promoting
  /// wheel buckets as needed; returns false when both tiers are empty.
  bool prepare_top() {
    if (wheel_count_ == 0) return !heap_.empty();
    while (heap_.empty() || heap_[0].time >= watermark_) {
      promote_bucket();
      if (wheel_count_ == 0) break;
    }
    return !heap_.empty();
  }

  /// Promote every live entry of the next-due bucket into the heap and
  /// advance the watermark one bucket width; re-buckets the overflow list
  /// when the ring completes a revolution.
  void promote_bucket();

  void sift_up(std::size_t i);
  void sift_down(std::size_t i);
  std::size_t min_child(std::size_t i, std::size_t n) const;
  /// Remove the minimum entry (Floyd's hole-push-down; cheaper than a
  /// generic erase at position 0).
  void pop_root();
  void place(std::size_t i, HeapEntry e) {
    heap_[i] = e;
    slot_pos_[e.slot] = static_cast<std::uint32_t>(i);
  }
  /// Remove the heap entry at position `i` (the slot is released by the
  /// caller, which still needs its payload).
  void heap_erase(std::size_t i);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  /// Heap position of each slot's entry (kInWheel for wheel-tier entries),
  /// parallel to slots_; kept out of Slot so sifting touches a dense 4-byte
  /// array instead of 64-byte slots.
  std::vector<std::uint32_t> slot_pos_;
  std::vector<std::uint32_t> free_slots_;

  /// Ring of buckets indexed by (absolute bucket number & kBucketMask);
  /// bucket vectors are recycled, so steady-state far scheduling allocates
  /// nothing either.
  std::vector<HeapEntry> wheel_[kNumBuckets];
  std::vector<HeapEntry> overflow_;
  /// Bucket-aligned promotion frontier: every wheel/overflow entry has
  /// time >= watermark_; nothing at/past it may pop before promotion.
  SimTime watermark_ = 0;
  /// Live (uncancelled) entries across ring + overflow.
  std::size_t wheel_count_ = 0;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;  ///< 0 marks a free slot.
  std::uint64_t executed_ = 0;
};

}  // namespace speedbal
