#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "util/time.hpp"

namespace speedbal {

/// Handle to a scheduled event; valid until the event fires or is cancelled.
struct EventHandle {
  SimTime time = kNever;
  std::uint64_t seq = 0;
  bool valid() const { return time >= 0; }
};

/// Deterministic discrete-event queue. Events at equal times fire in
/// insertion order (the seq tie-break), which keeps simulations bit-for-bit
/// reproducible for a given seed regardless of map iteration details.
class EventQueue {
 public:
  /// Schedule `fn` at absolute time `t` (must be >= now()).
  EventHandle schedule(SimTime t, std::function<void()> fn);

  /// Cancel a pending event; no-op if it already fired or was cancelled.
  void cancel(EventHandle h);

  /// True when no events are pending.
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Current simulation time (time of the last event popped).
  SimTime now() const { return now_; }

  /// Time of the earliest pending event, or kNever if empty.
  SimTime next_time() const;

  /// Pop and execute the earliest event; returns false when empty.
  bool run_next();

  /// Run events until simulation time would exceed `t`; leaves now() == t.
  void run_until(SimTime t);

  /// Run until the queue is empty.
  void run_all();

 private:
  using Key = std::pair<SimTime, std::uint64_t>;
  std::map<Key, std::function<void()>> events_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace speedbal
