#include "sim/cache_model.hpp"

#include <algorithm>
#include <cmath>

namespace speedbal {

MemoryModel::MemoryModel(const Topology& topo, MemoryModelParams params)
    : topo_(&topo), params_(params) {}

double MemoryModel::migration_cost_us(const Task& t, CoreId from,
                                      CoreId to) const {
  if (from < 0 || from == to) return 0.0;
  double cost = params_.migration_fixed_us;
  if (topo_->same_cache(from, to)) return cost;  // Warm cache travels along.
  const double warm_kb = std::min(t.spec().mem_footprint_kb, params_.llc_kb);
  double refill = warm_kb * params_.refill_us_per_kb;
  if (!topo_->same_numa(from, to)) refill *= params_.numa_refill_factor;
  return cost + refill;
}

double MemoryModel::speed_factor(const Task& t, CoreId core, double node_demand,
                                 double system_demand) const {
  const double mi = t.spec().mem_intensity;
  if (mi <= 0.0) return 1.0;

  // Memory-access slowdown r >= 1: remote-node penalty compounds with
  // bandwidth saturation at the node and system level.
  double r = 1.0;
  if (t.home_numa() >= 0 && topo_->core(core).numa_node != t.home_numa())
    r *= 1.0 + params_.numa_remote_penalty;
  const double node_over = node_demand / std::max(params_.node_bw_capacity, 1e-9);
  const double sys_over =
      system_demand / std::max(params_.system_bw_capacity, 1e-9);
  r *= std::max({1.0, node_over, sys_over});

  // Execution time splits into a compute part (1 - mi) and a memory part
  // (mi) that dilates by r; the speed factor is the inverse dilation.
  return 1.0 / ((1.0 - mi) + mi * r);
}

MemoryModelParams MemoryModel::tigerton_params() {
  MemoryModelParams p;
  p.llc_kb = 4096.0;  // 4 MB L2 per core pair.
  // All four front-side buses funnel into one memory controller hub: the
  // system saturates with only a few memory-bound tasks (hence Table 2's
  // speedup of ~5 at 16 cores for the memory-intensive NPB).
  p.node_bw_capacity = 4.0;
  p.system_bw_capacity = 4.0;
  p.numa_remote_penalty = 0.0;  // UMA.
  return p;
}

MemoryModelParams MemoryModel::barcelona_params() {
  MemoryModelParams p;
  p.llc_kb = 2048.0;  // 2 MB L3 per socket.
  // One memory controller per node: per-node capacity is modest but the
  // system scales with the four nodes (Table 2: speedups of ~8-12 at 16).
  p.node_bw_capacity = 2.2;
  p.system_bw_capacity = 8.8;
  p.numa_remote_penalty = 0.4;
  return p;
}

MemoryModelParams MemoryModel::for_topology(const Topology& topo) {
  if (topo.name() == "tigerton") return tigerton_params();
  if (topo.name() == "barcelona") return barcelona_params();
  MemoryModelParams p;
  if (topo.num_numa_nodes() > 1) {
    p.node_bw_capacity = 4.0;
    p.system_bw_capacity = 4.0 * topo.num_numa_nodes();
  } else {
    p.numa_remote_penalty = 0.0;
    p.node_bw_capacity = p.system_bw_capacity = 8.0;
  }
  return p;
}

}  // namespace speedbal
