#include "sim/cfs_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace speedbal {

void CfsQueue::enqueue(Task& t, bool sleeper_bonus) {
  assert(!contains(t));
  // Convert the task's queue-relative vruntime to this queue's clock. A
  // woken sleeper receives the CFS wakeup credit: it is placed half a
  // latency period before min_vruntime so it runs promptly (it was blocked,
  // not hoarding CPU) without being able to starve the queue.
  t.vruntime_ = sleeper_bonus ? min_vruntime_ - params_.sched_latency / 2
                              : t.vruntime_ + min_vruntime_;
  order_.insert(&t);
  load_ += t.spec().weight;
  update_min_vruntime();
}

void CfsQueue::dequeue(Task& t) {
  const auto it = order_.find(&t);
  assert(it != order_.end());
  order_.erase(it);
  load_ -= t.spec().weight;
  if (order_.empty()) load_ = 0.0;
  // Store vruntime relative to this queue so the next queue can rebase it.
  t.vruntime_ -= min_vruntime_;
  update_min_vruntime();
}

Task* CfsQueue::pick_next() const {
  return order_.empty() ? nullptr : *order_.begin();
}

void CfsQueue::requeue_behind(Task& t) {
  const auto it = order_.find(&t);
  assert(it != order_.end());
  order_.erase(it);
  const SimTime rightmost = order_.empty() ? min_vruntime_ : (*order_.rbegin())->vruntime_;
  t.vruntime_ = std::max(t.vruntime_, rightmost + 1);
  order_.insert(&t);
}

void CfsQueue::charge(Task& t, SimTime dur) {
  const bool queued = contains(t);
  if (queued) order_.erase(&t);
  const double w = std::max(t.spec().weight, 1e-9);
  t.vruntime_ += static_cast<SimTime>(std::llround(static_cast<double>(dur) / w));
  if (queued) {
    order_.insert(&t);
    update_min_vruntime();
  }
}

SimTime CfsQueue::timeslice() const {
  const auto nr = std::max<std::size_t>(order_.size(), 1);
  return std::max(params_.sched_latency / static_cast<SimTime>(nr),
                  params_.min_granularity);
}

bool CfsQueue::should_preempt(const Task& woken, const Task& running) const {
  return woken.vruntime_ + params_.wakeup_granularity < running.vruntime_;
}

bool CfsQueue::has_non_waiting() const {
  return std::any_of(order_.begin(), order_.end(), [](const Task* t) {
    return t->wait_mode() == WaitMode::None;
  });
}

std::vector<Task*> CfsQueue::tasks() const {
  return {order_.begin(), order_.end()};
}

bool CfsQueue::contains(const Task& t) const {
  // std::set::find uses the comparator; identity check needed because two
  // tasks can have equal keys only if they are the same task (id tiebreak).
  return order_.find(const_cast<Task*>(&t)) != order_.end();
}

void CfsQueue::update_min_vruntime() {
  if (order_.empty()) return;  // Keep the clock; new arrivals rebase onto it.
  min_vruntime_ = std::max(min_vruntime_, (*order_.begin())->vruntime_);
}

}  // namespace speedbal
