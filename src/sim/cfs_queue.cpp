#include "sim/cfs_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace speedbal {

bool CfsQueue::before(const Task* a, const Task* b) {
  if (a->vruntime() != b->vruntime()) return a->vruntime() < b->vruntime();
  return a->id() < b->id();
}

void CfsQueue::insert_sorted(Task* t) {
  const auto pos = std::upper_bound(order_.begin(), order_.end(), t, before);
  order_.insert(pos, t);
}

std::size_t CfsQueue::index_of(const Task& t) const {
  // Keys are unique (id tiebreak), so an equal-range search would land on
  // the element directly — but the vruntime may have been modified by the
  // caller between insert and lookup (charge), so scan by identity.
  const auto it = std::find(order_.begin(), order_.end(), &t);
  return static_cast<std::size_t>(it - order_.begin());
}

void CfsQueue::enqueue(Task& t, bool sleeper_bonus) {
  assert(!contains(t));
  // Convert the task's queue-relative vruntime to this queue's clock. A
  // woken sleeper receives the CFS wakeup credit: it is placed half a
  // latency period before min_vruntime so it runs promptly (it was blocked,
  // not hoarding CPU) without being able to starve the queue.
  t.vruntime_ref() = sleeper_bonus ? min_vruntime_ - params_.sched_latency / 2
                              : t.vruntime_ref() + min_vruntime_;
  insert_sorted(&t);
  load_ += t.spec().weight;
  update_min_vruntime();
}

void CfsQueue::dequeue(Task& t) {
  const std::size_t i = index_of(t);
  assert(i < order_.size());
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
  load_ -= t.spec().weight;
  if (order_.empty()) load_ = 0.0;
  // Store vruntime relative to this queue so the next queue can rebase it.
  t.vruntime_ref() -= min_vruntime_;
  update_min_vruntime();
}

Task* CfsQueue::pick_next() const {
  return order_.empty() ? nullptr : order_.front();
}

void CfsQueue::requeue_behind(Task& t) {
  const std::size_t i = index_of(t);
  assert(i < order_.size());
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
  const SimTime rightmost = order_.empty() ? min_vruntime_ : order_.back()->vruntime_ref();
  t.vruntime_ref() = std::max(t.vruntime_ref(), rightmost + 1);
  order_.push_back(&t);  // max vruntime + unique id: always the new rightmost
}

void CfsQueue::charge(Task& t, SimTime dur) {
  const std::size_t i = index_of(t);
  const bool queued = i < order_.size();
  if (queued)
    order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
  const double w = std::max(t.spec().weight, 1e-9);
  t.vruntime_ref() += static_cast<SimTime>(std::llround(static_cast<double>(dur) / w));
  if (queued) {
    insert_sorted(&t);
    update_min_vruntime();
  }
}

SimTime CfsQueue::timeslice() const {
  const auto nr = std::max<std::size_t>(order_.size(), 1);
  return std::max(params_.sched_latency / static_cast<SimTime>(nr),
                  params_.min_granularity);
}

bool CfsQueue::should_preempt(const Task& woken, const Task& running) const {
  return woken.vruntime() + params_.wakeup_granularity < running.vruntime();
}

bool CfsQueue::has_non_waiting() const {
  return std::any_of(order_.begin(), order_.end(), [](const Task* t) {
    return t->wait_mode() == WaitMode::None;
  });
}

bool CfsQueue::contains(const Task& t) const {
  return index_of(t) < order_.size();
}

void CfsQueue::update_min_vruntime() {
  if (order_.empty()) return;  // Keep the clock; new arrivals rebase onto it.
  min_vruntime_ = std::max(min_vruntime_, order_.front()->vruntime_ref());
}

}  // namespace speedbal
