#pragma once

#include "sim/task.hpp"
#include "topo/domains.hpp"
#include "topo/topology.hpp"
#include "util/time.hpp"

namespace speedbal {

/// Parameters of the memory-system model: migration cache-refill costs,
/// NUMA remote-access penalties, bandwidth saturation, and SMT contention.
/// Defaults are calibrated to the figures the paper cites: migration costs
/// range from microseconds (footprint within cache) to ~2 ms (larger than
/// cache) on the UMA Intel systems (Li et al., quoted in Section 4).
struct MemoryModelParams {
  /// Last-level cache capacity per cache group (Tigerton: 4 MB L2 per pair).
  double llc_kb = 4096.0;
  /// Cost to re-warm one KB of cached state after a cross-cache migration.
  double refill_us_per_kb = 0.5;
  /// Fixed kernel cost of any migration (run-queue manipulation).
  double migration_fixed_us = 5.0;
  /// Extra one-time cost multiplier for crossing a NUMA boundary.
  double numa_refill_factor = 2.0;
  /// Steady-state slowdown of memory accesses to a remote NUMA node.
  double numa_remote_penalty = 0.4;
  /// Slowdown of each hardware context when its SMT sibling is busy.
  double smt_contention_factor = 0.65;
  /// Aggregate memory bandwidth capacity, in units of "one fully
  /// memory-bound task", per NUMA node and for the whole system. A UMA
  /// front-side-bus machine is modeled with a low system capacity; a NUMA
  /// machine scales with its nodes.
  double node_bw_capacity = 4.0;
  double system_bw_capacity = 16.0;
};

/// Computes the performance effects of the memory system. Pure functions of
/// (topology, params, task placement); owned by the Simulator.
class MemoryModel {
 public:
  MemoryModel(const Topology& topo, MemoryModelParams params);

  const MemoryModelParams& params() const { return params_; }

  /// One-time overhead (microseconds of work at nominal speed) charged to a
  /// task migrated from core `from` to core `to`: lost cache state that must
  /// be refilled, bounded by the LLC capacity. Zero-footprint tasks pay only
  /// the fixed kernel cost.
  double migration_cost_us(const Task& t, CoreId from, CoreId to) const;

  /// Steady-state speed factor (0, 1] for `t` executing on `core`, given the
  /// total memory-bandwidth demand currently running on the core's NUMA node
  /// and system-wide (including `t` itself). Combines the NUMA remote-access
  /// penalty with bandwidth saturation.
  double speed_factor(const Task& t, CoreId core, double node_demand,
                      double system_demand) const;

  /// Default parameter sets matching the paper's two test systems (Table 1):
  /// Tigerton's shared front-side bus saturates early; Barcelona has
  /// per-node memory controllers but pays remote-access penalties.
  static MemoryModelParams tigerton_params();
  static MemoryModelParams barcelona_params();
  static MemoryModelParams for_topology(const Topology& topo);

 private:
  const Topology* topo_;
  MemoryModelParams params_;
};

}  // namespace speedbal
