#include "sim/metrics.hpp"

#include <algorithm>
#include <numeric>

namespace speedbal {

const char* to_string(MigrationCause cause) {
  switch (cause) {
    case MigrationCause::ForkPlacement: return "fork";
    case MigrationCause::WakePlacement: return "wake";
    case MigrationCause::Affinity: return "affinity";
    case MigrationCause::LinuxPeriodic: return "linux-periodic";
    case MigrationCause::LinuxNewIdle: return "linux-newidle";
    case MigrationCause::LinuxPush: return "linux-push";
    case MigrationCause::SpeedBalancer: return "speed";
    case MigrationCause::Dwrr: return "dwrr";
    case MigrationCause::Ule: return "ule";
    case MigrationCause::Hotplug: return "hotplug";
  }
  return "?";
}

void Metrics::record_run(TaskId task, CoreId core, SimTime dur) {
  auto& per_core = exec_[task];
  if (per_core.empty()) per_core.assign(static_cast<std::size_t>(num_cores_), 0);
  per_core[static_cast<std::size_t>(core)] += dur;
}

void Metrics::record_migration(const MigrationRecord& rec) {
  migrations_.push_back(rec);
  if (recorder_ != nullptr) {
    recorder_->trace().instant(
        rec.time, rec.to, "migration", "migrate",
        {{"task", static_cast<double>(rec.task)},
         {"from", static_cast<double>(rec.from)},
         {"to", static_cast<double>(rec.to)}},
        {{"cause", to_string(rec.cause)}});
  }
}

const std::vector<SimTime>& Metrics::exec_by_core(TaskId task) const {
  const auto it = exec_.find(task);
  return it != exec_.end() ? it->second : empty_;
}

SimTime Metrics::total_exec(TaskId task) const {
  const auto& per_core = exec_by_core(task);
  return std::accumulate(per_core.begin(), per_core.end(), SimTime{0});
}

SimTime Metrics::exec_in_window(TaskId task, SimTime from, SimTime to) const {
  SimTime total = 0;
  for (const auto& seg : segments_) {
    if (seg.task != task) continue;
    const SimTime lo = std::max(seg.start, from);
    const SimTime hi = std::min(seg.start + seg.dur, to);
    if (hi > lo) total += hi - lo;
  }
  return total;
}

double Metrics::residency_fraction(
    TaskId task, const std::function<bool(CoreId)>& pred) const {
  const auto& per_core = exec_by_core(task);
  SimTime total = 0;
  SimTime matched = 0;
  for (CoreId c = 0; c < num_cores_; ++c) {
    total += per_core[static_cast<std::size_t>(c)];
    if (pred(c)) matched += per_core[static_cast<std::size_t>(c)];
  }
  return total > 0 ? static_cast<double>(matched) / static_cast<double>(total)
                   : 0.0;
}

std::int64_t Metrics::migration_count(MigrationCause cause) const {
  return std::count_if(migrations_.begin(), migrations_.end(),
                       [cause](const MigrationRecord& m) { return m.cause == cause; });
}

std::map<MigrationCause, std::int64_t> Metrics::migration_counts_by_cause() const {
  std::map<MigrationCause, std::int64_t> out;
  for (const auto& m : migrations_) ++out[m.cause];
  return out;
}

void export_run_to_recorder(const Metrics& metrics, obs::RunRecorder& rec) {
  for (const auto& [cause, count] : metrics.migration_counts_by_cause())
    rec.incr(std::string("migrations.") + to_string(cause), count);
  for (const auto& seg : metrics.segments())
    rec.trace().span(seg.start, seg.dur, seg.core,
                     "task " + std::to_string(seg.task), "run");
}

}  // namespace speedbal
