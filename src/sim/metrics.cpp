#include "sim/metrics.hpp"

#include <algorithm>
#include <numeric>

namespace speedbal {

const char* to_string(MigrationCause cause) {
  switch (cause) {
    case MigrationCause::ForkPlacement: return "fork";
    case MigrationCause::WakePlacement: return "wake";
    case MigrationCause::Affinity: return "affinity";
    case MigrationCause::LinuxPeriodic: return "linux-periodic";
    case MigrationCause::LinuxNewIdle: return "linux-newidle";
    case MigrationCause::LinuxPush: return "linux-push";
    case MigrationCause::SpeedBalancer: return "speed";
    case MigrationCause::Dwrr: return "dwrr";
    case MigrationCause::Ule: return "ule";
    case MigrationCause::Hotplug: return "hotplug";
  }
  return "?";
}

MigrationCause parse_migration_cause(std::string_view s) {
  for (std::size_t i = 0; i < kNumMigrationCauses; ++i) {
    const auto cause = static_cast<MigrationCause>(i);
    if (s == to_string(cause)) return cause;
  }
  return MigrationCause::Affinity;
}

void Metrics::record_migration(const MigrationRecord& rec) {
  migrations_.push_back(rec);
  ++cause_counts_[static_cast<std::size_t>(rec.cause)];
  if (recorder_ != nullptr) {
    // Compact POD append; converted to trace instants in batches when the
    // telemetry buffer flushes (balance-interval granularity), replacing
    // the old per-migration trace write (mutex + string formatting each).
    recorder_->telemetry().append(
        {rec.time, rec.task, static_cast<std::int16_t>(rec.from),
         static_cast<std::int16_t>(rec.to)},
        static_cast<std::uint8_t>(rec.cause));
  }
}

void Metrics::set_recorder(obs::RunRecorder* rec) {
  recorder_ = rec;
  if (rec == nullptr) return;
  std::vector<std::string> names(kNumMigrationCauses);
  for (std::size_t i = 0; i < kNumMigrationCauses; ++i)
    names[i] = to_string(static_cast<MigrationCause>(i));
  rec->telemetry().set_kind_names(std::move(names));
}

void Metrics::drain() const {
  if (pending_.empty()) return;
  for (const Pending& p : pending_) {
    if (p.kind & kExec) {
      const auto t = static_cast<std::size_t>(p.task);
      if (t >= exec_.size()) exec_.resize(t + 1);
      auto& per_core = exec_[t];
      if (per_core.empty())
        per_core.assign(static_cast<std::size_t>(num_cores_), 0);
      per_core[static_cast<std::size_t>(p.core)] += p.dur;
    }
    if (p.kind & kSegment) drain_segment(p.task, p.core, p.start, p.dur);
  }
  pending_.clear();
}

void Metrics::drain_segment(TaskId task, CoreId core, SimTime start,
                            SimTime dur) const {
  segments_.push_back(
      {task, core, start, dur});
  const auto t = static_cast<std::size_t>(task);
  if (t >= intervals_.size()) {
    intervals_.resize(t + 1);
    last_core_.resize(t + 1, std::int16_t{-2});
  }
  auto& iv = intervals_[t];
  if (iv.empty() || start >= iv.back().start) {
    // Exactly-contiguous continuation on the same core: extend the last
    // interval instead of appending. Windowed sums cannot tell the
    // difference, and back-to-back dispatches of a lone task collapse to
    // one entry.
    if (!iv.empty() && iv.back().end() == start &&
        last_core_[t] == static_cast<std::int16_t>(core)) {
      iv.back().dur += dur;
      return;
    }
    const SimTime cum = iv.empty() ? 0 : iv.back().cum + iv.back().dur;
    iv.push_back(arena_, {start, dur, cum});
    last_core_[t] = static_cast<std::int16_t>(core);
    return;
  }
  // Out-of-order recording (not produced by the Simulator, but legal for
  // external callers): sorted insert, then rebuild the running sums from
  // the insertion point. Disable adjacent-merge for the next append — the
  // tail is no longer the record most recently seen.
  const auto pos = std::upper_bound(
      iv.begin(), iv.end(), start,
      [](SimTime s, const Interval& i) { return s < i.start; });
  const auto idx = static_cast<std::size_t>(pos - iv.begin());
  iv.insert(arena_, idx, {start, dur, 0});
  for (std::size_t i = idx; i < iv.size(); ++i)
    iv[i].cum = i == 0 ? 0 : iv[i - 1].cum + iv[i - 1].dur;
  last_core_[t] = -2;
}

void Metrics::reset() {
  pending_.clear();
  exec_.clear();
  // ArenaVectors hold pointers into the arena; drop them all before the
  // slabs are recycled.
  intervals_.clear();
  last_core_.clear();
  arena_.reset();
  segments_.clear();
  migrations_.clear();
  cause_counts_.fill(0);
}

const std::vector<SimTime>& Metrics::exec_by_core(TaskId task) const {
  drain();
  const auto t = static_cast<std::size_t>(task);
  if (task < 0 || t >= exec_.size() || exec_[t].empty()) return empty_;
  return exec_[t];
}

SimTime Metrics::total_exec(TaskId task) const {
  const auto& per_core = exec_by_core(task);
  return std::accumulate(per_core.begin(), per_core.end(), SimTime{0});
}

SimTime Metrics::exec_in_window(TaskId task, SimTime from, SimTime to) const {
  drain();
  const auto t = static_cast<std::size_t>(task);
  if (task < 0 || t >= intervals_.size() || from >= to) return 0;
  const auto& iv = intervals_[t];
  // First segment ending after `from` and first segment starting at/after
  // `to` bound the overlapping range; the running sums give its total
  // duration without iterating it.
  const auto lo = std::partition_point(
      iv.begin(), iv.end(), [from](const Interval& i) { return i.end() <= from; });
  const auto hi = std::partition_point(
      iv.begin(), iv.end(), [to](const Interval& i) { return i.start < to; });
  if (lo >= hi) return 0;
  const Interval& first = *lo;
  const Interval& last = *(hi - 1);
  SimTime total = last.cum + last.dur - first.cum;
  total -= std::max<SimTime>(0, from - first.start);
  total -= std::max<SimTime>(0, last.end() - to);
  return total;
}

double Metrics::residency_fraction(
    TaskId task, const std::function<bool(CoreId)>& pred) const {
  const auto& per_core = exec_by_core(task);
  SimTime total = 0;
  SimTime matched = 0;
  for (CoreId c = 0; c < num_cores_; ++c) {
    total += per_core[static_cast<std::size_t>(c)];
    if (pred(c)) matched += per_core[static_cast<std::size_t>(c)];
  }
  return total > 0 ? static_cast<double>(matched) / static_cast<double>(total)
                   : 0.0;
}

std::map<MigrationCause, std::int64_t> Metrics::migration_counts_by_cause() const {
  std::map<MigrationCause, std::int64_t> out;
  for (std::size_t i = 0; i < kNumMigrationCauses; ++i)
    if (cause_counts_[i] > 0) out[static_cast<MigrationCause>(i)] = cause_counts_[i];
  return out;
}

void export_run_to_recorder(const Metrics& metrics, obs::RunRecorder& rec,
                            int node) {
  for (const auto& [cause, count] : metrics.migration_counts_by_cause())
    rec.incr(std::string("migrations.") + to_string(cause), count);
  // One metered bulk copy of compact PODs; the recorder derives the "run"
  // trace spans lazily at write time. Doing this per segment through the
  // trace collector (string name + mutex each) used to cost several
  // milliseconds per run and showed up as a fake 40% serve-throughput gap.
  obs::OverheadMeter::Scoped meter(&rec.export_overhead());
  std::vector<obs::RunSegmentTable::Segment> batch;
  batch.reserve(metrics.segments().size());
  for (const auto& seg : metrics.segments())
    batch.push_back({seg.start, seg.dur, static_cast<std::int32_t>(seg.core),
                     static_cast<std::int32_t>(seg.task), node, 0});
  rec.run_segments().add_batch(std::move(batch));
}

}  // namespace speedbal
