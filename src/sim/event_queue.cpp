#include "sim/event_queue.hpp"

#include <cassert>
#include <stdexcept>

namespace speedbal {

EventHandle EventQueue::schedule(SimTime t, std::function<void()> fn) {
  if (t < now_) throw std::invalid_argument("EventQueue: schedule in the past");
  const EventHandle h{t, next_seq_++};
  events_.emplace(Key{h.time, h.seq}, std::move(fn));
  return h;
}

void EventQueue::cancel(EventHandle h) {
  if (!h.valid()) return;
  events_.erase(Key{h.time, h.seq});
}

SimTime EventQueue::next_time() const {
  return events_.empty() ? kNever : events_.begin()->first.first;
}

bool EventQueue::run_next() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  now_ = it->first.first;
  // Move the function out before erasing so the handler can schedule or
  // cancel other events (including at the same timestamp) safely.
  auto fn = std::move(it->second);
  events_.erase(it);
  fn();
  return true;
}

void EventQueue::run_until(SimTime t) {
  while (!events_.empty() && events_.begin()->first.first <= t) run_next();
  if (now_ < t) now_ = t;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

}  // namespace speedbal
