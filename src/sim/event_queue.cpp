#include "sim/event_queue.hpp"

#include <algorithm>

namespace speedbal {

void EventQueue::run_until(SimTime t) {
  while (prepare_top() && heap_[0].time <= t) run_next();
  if (now_ < t) now_ = t;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

EventHandle EventQueue::reschedule(EventHandle h, SimTime t) {
  if (t < now_)
    throw std::invalid_argument("EventQueue: reschedule in the past");
  if (!h.valid() || h.slot >= slots_.size() || slots_[h.slot].seq != h.seq)
    return EventHandle{};  // Dead handle; the caller must schedule fresh.
  const std::uint64_t seq = next_seq_++;
  slots_[h.slot].seq = seq;
  const HeapEntry e{t, seq, h.slot};
  const std::uint32_t pos = slot_pos_[h.slot];
  if (pos == kInWheel) {
    // The old ring/overflow entry just went stale (seq bumped); route the
    // replacement wherever it now belongs.
    --wheel_count_;
    insert_entry(e);
  } else if (t - now_ >= kFarHorizon && t >= watermark_) {
    heap_erase(pos);
    wheel_insert(e);
  } else {
    // Overwrite the key in place and restore the heap property — no slot
    // recycle, no callable move.
    const HeapEntry old = heap_[pos];
    heap_[pos] = e;
    if (before(e, old))
      sift_up(pos);
    else
      sift_down(pos);
  }
  return EventHandle{t, seq, h.slot};
}

void EventQueue::wheel_insert(const HeapEntry& e) {
  const auto pb = static_cast<std::uint64_t>(watermark_) >> kBucketBits;
  const auto eb = static_cast<std::uint64_t>(e.time) >> kBucketBits;
  if (eb - pb < kNumBuckets)
    wheel_[eb & kBucketMask].push_back(e);
  else
    overflow_.push_back(e);
  slot_pos_[e.slot] = kInWheel;
  ++wheel_count_;
}

void EventQueue::promote_bucket() {
  const auto pb = static_cast<std::uint64_t>(watermark_) >> kBucketBits;
  if ((pb & kBucketMask) == 0 && !overflow_.empty()) {
    // Ring revolution boundary: pull overflow entries that now fall within
    // the ring's horizon into their buckets (dropping stale ones).
    std::size_t keep = 0;
    for (const HeapEntry& e : overflow_) {
      if (e.slot >= slots_.size() || slots_[e.slot].seq != e.seq) continue;
      const auto eb = static_cast<std::uint64_t>(e.time) >> kBucketBits;
      if (eb - pb < kNumBuckets)
        wheel_[eb & kBucketMask].push_back(e);
      else
        overflow_[keep++] = e;
    }
    overflow_.resize(keep);
  }
  auto& bucket = wheel_[pb & kBucketMask];
  for (const HeapEntry& e : bucket) {
    // Live entries go to the heap, which restores (time, seq) order among
    // equal timestamps; stale entries (cancelled, or rescheduled away) are
    // recognized by their seq and dropped. Entries from a later ring
    // revolution that alias into this bucket are promoted early — the heap
    // holds any future time correctly, it just carries them sooner.
    if (e.slot < slots_.size() && slots_[e.slot].seq == e.seq &&
        slot_pos_[e.slot] == kInWheel) {
      heap_push(e);
      --wheel_count_;
    }
  }
  bucket.clear();
  watermark_ += kBucketWidth;
}

void EventQueue::sift_up(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, e);
}

/// Index of the smallest child of `i`, or `n` if `i` is a leaf.
std::size_t EventQueue::min_child(std::size_t i, std::size_t n) const {
  const std::size_t first = kArity * i + 1;
  if (first >= n) return n;
  const std::size_t last = std::min(first + kArity, n);
  std::size_t best = first;
  for (std::size_t c = first + 1; c < last; ++c)
    if (before(heap_[c], heap_[best])) best = c;
  return best;
}

void EventQueue::sift_down(std::size_t i) {
  HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t child = min_child(i, n);
    if (child >= n || !before(heap_[child], e)) break;
    place(i, heap_[child]);
    i = child;
  }
  place(i, e);
}

void EventQueue::pop_root() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Floyd's hole scheme: walk the hole from the root down the min-child
  // path to a leaf, then drop the tail entry in and bubble it up. The tail
  // of a min-heap almost always belongs near the bottom, so the bubble-up
  // usually exits immediately.
  std::size_t hole = 0;
  std::size_t child;
  while ((child = min_child(hole, n)) < n) {
    place(hole, heap_[child]);
    hole = child;
  }
  place(hole, last);
  sift_up(hole);
}

void EventQueue::heap_erase(std::size_t i) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (i == heap_.size()) return;  // Erased the tail entry.
  heap_[i] = last;
  slot_pos_[last.slot] = static_cast<std::uint32_t>(i);
  // The moved entry may need to travel either way relative to position i.
  if (i > 0 && before(heap_[i], heap_[(i - 1) / kArity]))
    sift_up(i);
  else
    sift_down(i);
}

}  // namespace speedbal
