#include "sim/event_queue.hpp"

#include <algorithm>

namespace speedbal {

void EventQueue::run_until(SimTime t) {
  while (!heap_.empty() && heap_[0].time <= t) run_next();
  if (now_ < t) now_ = t;
}

void EventQueue::run_all() {
  while (run_next()) {
  }
}

void EventQueue::sift_up(std::size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / kArity;
    if (!before(e, heap_[parent])) break;
    place(i, heap_[parent]);
    i = parent;
  }
  place(i, e);
}

/// Index of the smallest child of `i`, or `n` if `i` is a leaf.
std::size_t EventQueue::min_child(std::size_t i, std::size_t n) const {
  const std::size_t first = kArity * i + 1;
  if (first >= n) return n;
  const std::size_t last = std::min(first + kArity, n);
  std::size_t best = first;
  for (std::size_t c = first + 1; c < last; ++c)
    if (before(heap_[c], heap_[best])) best = c;
  return best;
}

void EventQueue::sift_down(std::size_t i) {
  HeapEntry e = heap_[i];
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t child = min_child(i, n);
    if (child >= n || !before(heap_[child], e)) break;
    place(i, heap_[child]);
    i = child;
  }
  place(i, e);
}

void EventQueue::pop_root() {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  // Floyd's hole scheme: walk the hole from the root down the min-child
  // path to a leaf, then drop the tail entry in and bubble it up. The tail
  // of a min-heap almost always belongs near the bottom, so the bubble-up
  // usually exits immediately.
  std::size_t hole = 0;
  std::size_t child;
  while ((child = min_child(hole, n)) < n) {
    place(hole, heap_[child]);
    hole = child;
  }
  place(hole, last);
  sift_up(hole);
}

void EventQueue::heap_erase(std::size_t i) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (i == heap_.size()) return;  // Erased the tail entry.
  heap_[i] = last;
  slot_pos_[last.slot] = static_cast<std::uint32_t>(i);
  // The moved entry may need to travel either way relative to position i.
  if (i > 0 && before(heap_[i], heap_[(i - 1) / kArity]))
    sift_up(i);
  else
    sift_down(i);
}

}  // namespace speedbal
