#pragma once

#include <cstddef>
#include <vector>

#include "sim/task.hpp"
#include "util/time.hpp"

namespace speedbal {

/// Tunables of the per-core fair scheduler, mirroring the CFS sysctls of the
/// Linux 2.6.28 kernel the paper ran on.
struct CfsParams {
  /// Target period in which every runnable task runs once.
  SimTime sched_latency = msec(20);
  /// Lower bound on any timeslice (prevents thrashing at high task counts).
  SimTime min_granularity = msec(4);
  /// A waking task preempts the current one only if its vruntime is behind
  /// by more than this.
  SimTime wakeup_granularity = msec(1);
  /// CPU time a yield-polling task consumes per sched_yield round trip.
  SimTime yield_check = usec(5);
  /// Timeslice given to a yield-waiting task when every runnable task on the
  /// core is also yield-waiting (coarsening only; occupancy is equivalent).
  SimTime yield_idle_slice = msec(1);
};

/// Per-core CFS run queue: tasks ordered by virtual runtime; the leftmost
/// (minimum vruntime) task runs next. Task vruntimes are stored relative to
/// the queue's min_vruntime while enqueued so migrations between queues do
/// not import another core's virtual clock.
///
/// Storage is a flat vector kept sorted ascending by (vruntime, id) — the
/// same total order the old rb-tree gave, without per-node allocation or
/// pointer chasing. Queues hold a handful of tasks (tens at worst under
/// oversubscription), where a binary search plus memmove beats tree
/// rebalancing on every enqueue/charge.
class CfsQueue {
 public:
  explicit CfsQueue(CfsParams params = {}) : params_(params) {}

  const CfsParams& params() const { return params_; }

  /// Add a runnable task. If `sleeper_bonus` is set the task is placed
  /// slightly behind min_vruntime (the CFS wakeup credit), so freshly woken
  /// tasks are scheduled promptly.
  void enqueue(Task& t, bool sleeper_bonus);

  /// Remove a task (migration, sleep, or exit).
  void dequeue(Task& t);

  /// Task that would run next (min vruntime), or nullptr when empty.
  Task* pick_next() const;

  /// Reinsert a task at the right edge of the queue (sched_yield semantics:
  /// every other runnable task will run before it does).
  void requeue_behind(Task& t);

  /// Charge `dur` of execution to the task's virtual clock (weighted).
  void charge(Task& t, SimTime dur);

  /// Timeslice for the current load: max(latency / nr_running, min_gran).
  SimTime timeslice() const;

  /// True if the woken task should preempt `running` under CFS wakeup
  /// preemption rules.
  bool should_preempt(const Task& woken, const Task& running) const;

  std::size_t nr_running() const { return order_.size(); }
  bool empty() const { return order_.empty(); }
  double load() const { return load_; }
  SimTime min_vruntime() const { return min_vruntime_; }

  /// Whether any enqueued task is doing real work (not barrier-waiting).
  bool has_non_waiting() const;

  /// Snapshot of enqueued tasks in vruntime order (for balancer scans).
  /// Allocates; hot callers should use the out-buffer or visitor forms.
  std::vector<Task*> tasks() const { return order_; }

  /// Allocation-free snapshot into a caller-owned reuse buffer.
  void tasks(std::vector<Task*>& out) const {
    out.assign(order_.begin(), order_.end());
  }

  /// Visit enqueued tasks in vruntime order without copying. The callback
  /// must not mutate the queue.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (Task* t : order_) fn(t);
  }

  bool contains(const Task& t) const;

 private:
  static bool before(const Task* a, const Task* b);

  /// Binary-search insert preserving (vruntime, id) order.
  void insert_sorted(Task* t);
  /// Index of `t` in order_, or order_.size() when absent (linear scan —
  /// queues are small and the scan is over a dense pointer array).
  std::size_t index_of(const Task& t) const;

  void update_min_vruntime();

  CfsParams params_;
  std::vector<Task*> order_;  ///< sorted ascending by (vruntime, id)
  double load_ = 0.0;
  SimTime min_vruntime_ = 0;
};

}  // namespace speedbal
