#include "sim/simulator.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/log.hpp"

namespace speedbal {

Simulator::Simulator(const Topology& topo, SimParams params, std::uint64_t seed)
    : topo_(topo),
      domains_(DomainTree::build(topo_)),
      params_(params),
      memory_(topo_, params.mem ? *params.mem : MemoryModel::for_topology(topo_)),
      metrics_(topo_.num_cores()),
      rng_(seed) {
  if (topo_.num_cores() > 64)
    throw std::invalid_argument("Simulator supports at most 64 cores");
  core_store_.init(static_cast<std::size_t>(topo_.num_cores()));
  cores_.reserve(static_cast<std::size_t>(topo_.num_cores()));
  for (CoreId c = 0; c < topo_.num_cores(); ++c)
    cores_.emplace_back(c, params_.cfs, core_store_);
  node_demand_.assign(static_cast<std::size_t>(topo_.num_numa_nodes()), 0.0);
  load_snapshot_.assign(static_cast<std::size_t>(topo_.num_cores()), 0);
}

// --- Task lifecycle ---------------------------------------------------------

Task& Simulator::create_task(TaskSpec spec) {
  tasks_.emplace_back(next_task_id_++, std::move(spec), task_store_);
  tasks_.back().sleep_since_ = now();  // Born sleeping.
  return tasks_.back();
}

void Simulator::start_task(Task& t, std::uint64_t allowed_mask) {
  const std::uint64_t usable =
      topo_.num_cores() >= 64 ? ~0ULL : ((1ULL << topo_.num_cores()) - 1);
  t.allowed_ = allowed_mask & usable;
  if (t.allowed_ == 0) throw std::invalid_argument("start_task: empty affinity");
  enqueue_on(t, select_core_fork(t), /*sleeper_bonus=*/false);
}

void Simulator::start_task_on(Task& t, CoreId core, std::uint64_t allowed_mask) {
  const std::uint64_t usable =
      topo_.num_cores() >= 64 ? ~0ULL : ((1ULL << topo_.num_cores()) - 1);
  t.allowed_ = allowed_mask & usable;
  if (!t.allowed_on(core))
    throw std::invalid_argument("start_task_on: core outside affinity");
  if (!core_online(core))
    throw std::invalid_argument("start_task_on: core offline");
  enqueue_on(t, core, /*sleeper_bonus=*/false);
}

void Simulator::assign_work(Task& t, double work_us) {
  if (!(work_us > 0.0))
    throw std::invalid_argument("assign_work: work must be positive");
  t.remaining_work_ref() += work_us;
  t.wait_mode_ref() = WaitMode::None;
  if (t.state_ref() == TaskState::Running) {
    flush_accounting(t.core_ref());
    reschedule_stop(t.core_ref());
  }
}

void Simulator::set_wait_mode(Task& t, WaitMode mode) {
  if (t.state_ref() == TaskState::Finished)
    throw std::logic_error("set_wait_mode on finished task");
  t.wait_mode_ref() = mode;
  if (mode != WaitMode::None) t.remaining_work_ref() = 0.0;
  if (t.state_ref() == TaskState::Running) {
    flush_accounting(t.core_ref());
    reschedule_stop(t.core_ref());
  }
}

void Simulator::sleep_task(Task& t) {
  ++t.wake_seq_;
  switch (t.state_ref()) {
    case TaskState::Sleeping:
      return;
    case TaskState::Parked:
      t.state_ref() = TaskState::Sleeping;
      t.wait_mode_ref() = WaitMode::None;
      t.sleep_since_ = now();
      return;
    case TaskState::Finished:
      throw std::logic_error("sleep_task on finished task");
    case TaskState::Running: {
      const CoreId c = t.core_ref();
      halt_running(c);
      core(c).queue().dequeue(t);
      t.state_ref() = TaskState::Sleeping;
      t.wait_mode_ref() = WaitMode::None;
      t.sleep_since_ = now();
      dispatch(c);
      return;
    }
    case TaskState::Runnable:
      core(t.core_ref()).queue().dequeue(t);
      t.state_ref() = TaskState::Sleeping;
      t.wait_mode_ref() = WaitMode::None;
      t.sleep_since_ = now();
      return;
  }
}

void Simulator::sleep_task_for(Task& t, SimTime dur) {
  sleep_task(t);
  const std::uint64_t seq = t.wake_seq_;
  Task* tp = &t;
  schedule_after(std::max<SimTime>(dur, 1), [this, tp, seq] {
    if (tp->state_ref() == TaskState::Sleeping && tp->wake_seq_ == seq) wake_task(*tp);
  });
}

void Simulator::wake_task(Task& t) {
  if (t.state_ref() != TaskState::Sleeping) return;  // Benign lost race.
  ++t.wake_seq_;
  if ((t.allowed_ & online_mask()) == 0)
    t.allowed_ = online_mask();  // select_fallback_rq: every allowed core offline.
  const CoreId prev = t.core_ref();
  const CoreId c = select_core_wake(t);
  if (c != prev && prev >= 0) {
    t.warmup_remaining_ref() += memory_.migration_cost_us(t, prev, c);
    metrics_.record_migration({now(), t.id(), prev, c, MigrationCause::WakePlacement});
  }
  enqueue_on(t, c, /*sleeper_bonus=*/true);
}

void Simulator::finish_task(Task& t) {
  ++t.wake_seq_;
  switch (t.state_ref()) {
    case TaskState::Finished:
      return;
    case TaskState::Running: {
      const CoreId c = t.core_ref();
      halt_running(c);
      core(c).queue().dequeue(t);
      t.state_ref() = TaskState::Finished;
      dispatch(c);
      return;
    }
    case TaskState::Runnable:
      core(t.core_ref()).queue().dequeue(t);
      t.state_ref() = TaskState::Finished;
      return;
    case TaskState::Sleeping:
    case TaskState::Parked:
      t.state_ref() = TaskState::Finished;
      return;
  }
}

void Simulator::park_task(Task& t) {
  switch (t.state_ref()) {
    case TaskState::Parked:
      return;
    case TaskState::Sleeping:
    case TaskState::Finished:
      throw std::logic_error("park_task on blocked/finished task");
    case TaskState::Running: {
      const CoreId c = t.core_ref();
      halt_running(c);
      core(c).queue().dequeue(t);
      t.state_ref() = TaskState::Parked;
      dispatch(c);
      return;
    }
    case TaskState::Runnable:
      core(t.core_ref()).queue().dequeue(t);
      t.state_ref() = TaskState::Parked;
      return;
  }
}

void Simulator::unpark_task(Task& t) {
  if (t.state_ref() != TaskState::Parked) return;
  CoreId c = t.core_ref();
  if (!core(c).online()) {
    // The core went away while the task sat on an expired/parked list.
    if ((t.allowed_ & online_mask()) == 0) t.allowed_ = online_mask();
    c = least_loaded_online(t.allowed_);
    metrics_.record_migration({now(), t.id(), t.core_ref(), c, MigrationCause::Hotplug});
  }
  enqueue_on(t, c, /*sleeper_bonus=*/false);
}

bool Simulator::set_affinity(Task& t, std::uint64_t mask, bool hard_pin,
                             MigrationCause cause) {
  const std::uint64_t usable =
      topo_.num_cores() >= 64 ? ~0ULL : ((1ULL << topo_.num_cores()) - 1);
  mask &= usable;
  if (mask == 0) throw std::invalid_argument("set_affinity: empty mask");
  // The kernel rejects a mask with no online CPU (EINVAL) and leaves the
  // old affinity in place; callers must cope, like the real balancer does.
  if ((mask & online_mask()) == 0) return false;
  t.allowed_ = mask;
  if (hard_pin) t.hard_pinned_ = true;
  if (t.state_ref() == TaskState::Finished) return true;
  if (t.allowed_on(t.core_ref()) &&
      (core(t.core_ref()).online() || t.state_ref() == TaskState::Sleeping ||
       t.state_ref() == TaskState::Parked))
    return true;  // Sleepers on a dead core are redirected at wake/unpark.
  // Current core excluded (or offline): the kernel moves the task
  // immediately to the least-loaded allowed online core. migrate() handles
  // sleepers by retargeting them (effective at wake-up) while still logging
  // the move, so the migration record stream matches the decision log.
  migrate(t, least_loaded_online(t.allowed_), cause);
  return true;
}

void Simulator::migrate(Task& t, CoreId to, MigrationCause cause) {
  if (t.state_ref() == TaskState::Finished)
    throw std::logic_error("migrate on finished task");
  if (!t.allowed_on(to))
    throw std::invalid_argument("migrate: destination outside affinity");
  if (!core(to).online())
    throw std::invalid_argument("migrate: destination core offline");
  const CoreId from = t.core_ref();
  if (to == from) return;

  if (t.state_ref() == TaskState::Sleeping || t.state_ref() == TaskState::Parked) {
    // Only retarget; the cache cost is charged when it actually runs there.
    // Still counted and logged: the per-task counter must match the
    // migration log (WakePlacement is the only recorded-but-uncounted cause).
    t.core_ref() = to;
    ++t.migrations_;
    t.last_migration_ = now();
    metrics_.record_migration({now(), t.id(), from, to, cause});
    return;
  }

  const bool was_running = t.state_ref() == TaskState::Running;
  if (was_running) halt_running(from);
  core(from).queue().dequeue(t);

  t.warmup_remaining_ref() += memory_.migration_cost_us(t, from, to);
  ++t.migrations_;
  t.last_migration_ = now();
  metrics_.record_migration({now(), t.id(), from, to, cause});

  t.core_ref() = to;
  t.state_ref() = TaskState::Runnable;
  core(to).queue().enqueue(t, /*sleeper_bonus=*/false);

  if (core(to).running_ref() == nullptr) dispatch(to);
  if (was_running) dispatch(from);
}

// --- Perturbations (DVFS & hotplug) -----------------------------------------

void Simulator::set_clock_scale(CoreId c, double scale) {
  topo_.set_clock_scale(c, scale);
  // Clock scale enters the speed model for this core only; SMT contention
  // and memory effects are unchanged, so only this core needs a refresh.
  auto& cs = core(c);
  if (cs.running_ref() == nullptr) return;
  const double ns = compute_speed(*cs.running_ref(), c);
  if (std::abs(ns - cs.current_speed_ref()) < 1e-12) return;
  flush_accounting(c);  // Charge the elapsed part at the old speed.
  cs.current_speed_ref() = ns;
  reschedule_stop(c);
}

void Simulator::set_core_online(CoreId c, bool online) {
  auto& cs = core(c);
  if (cs.online_ref() == online) return;
  if (online) {
    cs.online_ref() = true;
    cs.idle_since_ref() = now();
    return;
  }
  if (num_online_cores() <= 1)
    throw std::invalid_argument("set_core_online: cannot offline the last core");
  cs.online_ref() = false;
  // Drain: stop the running task (it rejoins the queue) and push everything
  // to online cores. Like the kernel's CPU-down path, a task whose mask
  // holds no online core gets the mask broken open (select_fallback_rq).
  halt_running(c);
  while (true) {
    Task* t = cs.queue().pick_next();
    if (t == nullptr) break;
    if ((t->allowed_ & online_mask()) == 0) t->allowed_ = online_mask();
    migrate(*t, least_loaded_online(t->allowed_), MigrationCause::Hotplug);
  }
  cs.idle_since_ref() = now();
}

std::uint64_t Simulator::online_mask() const {
  std::uint64_t m = 0;
  for (CoreId c = 0; c < num_cores(); ++c)
    if (core(c).online()) m |= 1ULL << c;
  return m;
}

int Simulator::num_online_cores() const {
  return std::popcount(online_mask());
}

// --- Time control -------------------------------------------------------

EventHandle Simulator::schedule_at(SimTime t, EventFn fn) {
  return events_.schedule(t, std::move(fn));
}

EventHandle Simulator::schedule_after(SimTime dt, EventFn fn) {
  return events_.schedule(now() + dt, std::move(fn));
}

bool Simulator::run_while_pending(const std::function<bool()>& until,
                                  SimTime cap) {
  while (!until()) {
    if (events_.empty()) return false;
    if (events_.next_time() > cap) return false;
    step();
  }
  return true;
}

// --- Queries ----------------------------------------------------------------

void Simulator::sync_accounting(CoreId c) { flush_accounting(c); }

void Simulator::sync_all_accounting() {
  for (CoreId c = 0; c < num_cores(); ++c) flush_accounting(c);
}

std::vector<Task*> Simulator::live_tasks() const {
  std::vector<Task*> out;
  live_tasks(out);
  return out;
}

std::vector<Task*> Simulator::tasks_on(CoreId c) const {
  return core(c).queue().tasks();
}

void Simulator::live_tasks(std::vector<Task*>& out) const {
  out.clear();
  for (const Task& t : tasks_)
    if (t.state() != TaskState::Finished) out.push_back(const_cast<Task*>(&t));
}

void Simulator::tasks_on(CoreId c, std::vector<Task*>& out) const {
  core(c).queue().tasks(out);
}

bool Simulator::can_migrate(const Task& t, CoreId to) const {
  return t.state() != TaskState::Finished && t.allowed_on(to) &&
         t.core() != to && core(to).online();
}

// --- Dispatch engine ----------------------------------------------------

void Simulator::dispatch(CoreId c) {
  auto& cs = core(c);
  // An offline core executes nothing — in particular its idle hook must not
  // fire, or new-idle balancing would pull work into a dead core.
  if (!cs.online_ref()) return;
  if (cs.running_ref() != nullptr || cs.in_dispatch_ref()) return;
  cs.in_dispatch_ref() = 1;
  Task* pick = cs.queue().pick_next();
  if (pick == nullptr) {
    // New-idle balancing: give the attached balancer a chance to pull work
    // into this queue before we commit to idling.
    if (idle_hook_) idle_hook_(c);
    pick = cs.queue().pick_next();
  }
  if (pick != nullptr) {
    start_running(c, *pick);
  } else {
    cs.idle_since_ref() = now();
  }
  cs.in_dispatch_ref() = 0;
}

void Simulator::start_running(CoreId c, Task& t) {
  auto& cs = core(c);
  assert(cs.running_ref() == nullptr);
  // A task can legitimately arrive here with zero work: migrating a running
  // task flushes its accounting first, and the flush may consume the last
  // of its work. reschedule_stop() then fires core_stop immediately, which
  // runs the normal completion path.
  cs.running_ref() = &t;
  t.state_ref() = TaskState::Running;
  // First touch: the memory home is fixed only once the task has actually
  // executed for a while (see SimParams::first_touch_exec), i.e. after any
  // initial balancer pinning. Updating only at dispatch keeps the
  // node-demand accounting consistent within each dispatch.
  if (t.home_numa_ < 0 && t.total_exec_ref() >= params_.first_touch_exec)
    t.home_numa_ = topo_.core(c).numa_node;
  cs.run_start_ref() = now();
  cs.idle_since_ref() = kNever;
  add_running_demand(t, +1);
  cs.current_speed_ref() = compute_speed(t, c);

  SimTime slice;
  if (t.wait_mode_ref() == WaitMode::Yield) {
    // A polling waiter burns only a sched_yield round trip when it shares
    // the core with real work; when every runnable task here is waiting we
    // coarsen the slice (occupancy is equivalent, events are fewer).
    slice = cs.queue().has_non_waiting() ? cs.queue().params().yield_check
                                         : cs.queue().params().yield_idle_slice;
  } else {
    slice = cs.queue().timeslice();
  }
  cs.slice_end_ref() = now() + slice;
  cs.stop_event_ref() = {};
  reschedule_stop(c);
  refresh_speeds(t);
}

void Simulator::flush_accounting(CoreId c) {
  auto& cs = core(c);
  Task* t = cs.running_ref();
  if (t == nullptr) return;
  const SimTime dur = now() - cs.run_start_ref();
  if (dur <= 0) return;
  double done = static_cast<double>(dur) * cs.current_speed_ref();
  if (t->warmup_remaining_ref() > 0.0) {
    const double burn = std::min(t->warmup_remaining_ref(), done);
    t->warmup_remaining_ref() -= burn;
    done -= burn;
    // Wall time the burn cost at this core's current speed (guarded: a
    // zero-speed core makes no progress, so no time is attributable).
    if (burn > 0.0) t->warmup_time_ref() += burn / cs.current_speed_ref();
  }
  if (t->wait_mode_ref() == WaitMode::None)
    t->remaining_work_ref() = std::max(0.0, t->remaining_work_ref() - done);
  t->total_exec_ref() += dur;
  t->last_ran_ref() = now();
  cs.busy_time_ref() += dur;
  cs.queue().charge(*t, dur);
  metrics_.record_exec(t->id(), c, now() - dur, dur);
  cs.run_start_ref() = now();
}

void Simulator::halt_running(CoreId c) {
  auto& cs = core(c);
  Task* t = cs.running_ref();
  if (t == nullptr) return;
  flush_accounting(c);
  events_.cancel(cs.stop_event_ref());
  cs.stop_event_ref() = {};
  cs.running_ref() = nullptr;
  t->state_ref() = TaskState::Runnable;
  add_running_demand(*t, -1);
  refresh_speeds(*t);
}

void Simulator::reschedule_stop(CoreId c) {
  auto& cs = core(c);
  Task* t = cs.running_ref();
  assert(t != nullptr);
  SimTime stop = cs.slice_end_ref();
  if (t->wait_mode_ref() == WaitMode::None) {
    const double work_left = t->warmup_remaining_ref() + t->remaining_work_ref();
    const double speed = std::max(cs.current_speed_ref(), 1e-12);
    // Zero work completes right away (see start_running); otherwise at
    // least 1 us so progress-free loops are impossible.
    const SimTime dur =
        work_left <= kWorkEps
            ? 0
            : std::max<SimTime>(static_cast<SimTime>(std::ceil(work_left / speed)), 1);
    stop = std::min(stop, now() + dur);
  }
  stop = std::max(stop, now());
  // The stop callable is identical for every reschedule of a core, so a
  // live handle is retimed in place (same slot, same callable, fresh seq —
  // semantics identical to cancel + schedule, minus the slot churn).
  EventHandle moved = events_.reschedule(cs.stop_event_ref(), stop);
  if (!moved.valid()) moved = events_.schedule(stop, [this, c] { core_stop(c); });
  cs.stop_event_ref() = moved;
}

void Simulator::core_stop(CoreId c) {
  auto& cs = core(c);
  Task* t = cs.running_ref();
  assert(t != nullptr);
  cs.stop_event_ref() = {};
  flush_accounting(c);
  cs.running_ref() = nullptr;
  t->state_ref() = TaskState::Runnable;
  add_running_demand(*t, -1);
  refresh_speeds(*t);

  if (t->wait_mode_ref() == WaitMode::None && t->remaining_work_ref() <= kWorkEps &&
      t->warmup_remaining_ref() <= kWorkEps) {
    t->remaining_work_ref() = 0.0;
    t->warmup_remaining_ref() = 0.0;
    if (t->spec().client != nullptr) {
      t->spec().client->on_work_complete(*this, *t);
      if (t->state_ref() == TaskState::Runnable && t->wait_mode_ref() == WaitMode::None &&
          t->remaining_work_ref() <= kWorkEps)
        throw std::logic_error("TaskClient for '" + t->name() +
                               "' left the task runnable with no work");
    } else {
      finish_task(*t);
    }
  } else if (t->state_ref() == TaskState::Runnable && t->wait_mode_ref() == WaitMode::Yield) {
    cs.queue().requeue_behind(*t);
  }
  dispatch(c);
}

// --- Speed model --------------------------------------------------------

double Simulator::compute_speed(const Task& t, CoreId c) const {
  double s = topo_.core(c).clock_scale;
  const CoreId sib = topo_.core(c).smt_sibling;
  if (sib >= 0 && core(sib).running() != nullptr)
    s *= memory_.params().smt_contention_factor;
  const int node = t.home_numa() >= 0 ? t.home_numa() : topo_.core(c).numa_node;
  s *= memory_.speed_factor(t, c, node_demand_[static_cast<std::size_t>(node)],
                            system_demand_);
  return s;
}

void Simulator::add_running_demand(const Task& t, int sign) {
  const double d = t.spec().mem_bw_demand;
  if (d <= 0.0) return;
  const int node = t.home_numa() >= 0 ? t.home_numa()
                                      : topo_.core(t.core()).numa_node;
  auto& nd = node_demand_[static_cast<std::size_t>(node)];
  nd = std::max(0.0, nd + sign * d);
  system_demand_ = std::max(0.0, system_demand_ + sign * d);
}

void Simulator::refresh_speeds(const Task& changed) {
  const bool bw = changed.spec().mem_bw_demand > 0.0;
  if (!bw && !topo_.has_smt()) return;
  const CoreId sib = topo_.core(changed.core()).smt_sibling;
  for (CoreId c = 0; c < num_cores(); ++c) {
    auto& cs = core(c);
    Task* rt = cs.running_ref();
    if (rt == nullptr) continue;
    if (!bw && c != sib) continue;  // Only the SMT sibling is affected.
    const double ns = compute_speed(*rt, c);
    if (std::abs(ns - cs.current_speed_ref()) < 1e-12) continue;
    flush_accounting(c);  // Charge the elapsed part at the old speed.
    cs.current_speed_ref() = ns;
    reschedule_stop(c);
  }
}

// --- Placement ------------------------------------------------------------

void Simulator::enqueue_on(Task& t, CoreId c, bool sleeper_bonus) {
  auto& cs = core(c);
  assert(cs.online_ref());  // Every placement path filters offline cores.
  if (t.sleep_since_ != kNever) {  // Close the sleep interval (wake/start).
    t.total_sleep_ += now() - t.sleep_since_;
    t.sleep_since_ = kNever;
  }
  t.core_ref() = c;
  t.state_ref() = TaskState::Runnable;
  cs.queue().enqueue(t, sleeper_bonus);
  if (cs.running_ref() == nullptr) {
    dispatch(c);
  } else if (sleeper_bonus && cs.queue().should_preempt(t, *cs.running_ref())) {
    halt_running(c);
    dispatch(c);
  }
}

void Simulator::maybe_refresh_load_snapshot() {
  if (load_snapshot_time_ != kNever &&
      now() - load_snapshot_time_ < params_.load_snapshot_period)
    return;
  for (CoreId c = 0; c < num_cores(); ++c)
    load_snapshot_[static_cast<std::size_t>(c)] =
        static_cast<int>(core(c).queue().nr_running());
  load_snapshot_time_ = now();
}

CoreId Simulator::select_core_fork(const Task& t) {
  maybe_refresh_load_snapshot();
  int best_load = std::numeric_limits<int>::max();
  std::vector<CoreId> best;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (!t.allowed_on(c) || !core(c).online()) continue;
    const int load = load_snapshot_[static_cast<std::size_t>(c)];
    if (load < best_load) {
      best_load = load;
      best.assign(1, c);
    } else if (load == best_load) {
      best.push_back(c);
    }
  }
  if (best.empty())
    throw std::invalid_argument("start_task: no online core in affinity");
  return best[rng_.uniform_u64(best.size())];
}

CoreId Simulator::select_core_wake(const Task& t) {
  const CoreId prev = t.core();
  if (prev >= 0 && t.allowed_on(prev) && core(prev).online() &&
      core(prev).idle())
    return prev;
  // Search for an idle core, nearest first (same cache, socket, NUMA node).
  // An offline core looks idle (nothing runs there) but must never attract
  // a wake-up.
  CoreId best = -1;
  int best_rank = std::numeric_limits<int>::max();
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (!t.allowed_on(c) || !core(c).online() || !core(c).idle()) continue;
    int rank = 3;
    if (prev >= 0) {
      if (topo_.same_cache(prev, c)) rank = 0;
      else if (topo_.same_socket(prev, c)) rank = 1;
      else if (topo_.same_numa(prev, c)) rank = 2;
    }
    if (rank < best_rank) {
      best_rank = rank;
      best = c;
    }
  }
  if (best >= 0) return best;
  if (prev >= 0 && t.allowed_on(prev) && core(prev).online()) return prev;
  // No idle core and previous core unusable: least-loaded allowed core.
  return least_loaded_online(t.allowed_);
}

CoreId Simulator::least_loaded_online(std::uint64_t mask) const {
  std::size_t best_load = std::numeric_limits<std::size_t>::max();
  CoreId best = -1;
  for (CoreId c = 0; c < num_cores(); ++c) {
    if (((mask >> c) & 1ULL) == 0 || !core(c).online()) continue;
    if (core(c).queue().nr_running() < best_load) {
      best_load = core(c).queue().nr_running();
      best = c;
    }
  }
  return best;
}

}  // namespace speedbal
