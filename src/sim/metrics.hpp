#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/recorder.hpp"
#include "sim/task.hpp"
#include "topo/topology.hpp"
#include "util/arena.hpp"
#include "util/time.hpp"

namespace speedbal {

/// Why a migration happened; lets the experiments attribute migration
/// volume to each balancing mechanism.
enum class MigrationCause {
  ForkPlacement,    ///< Initial core choice at task start.
  WakePlacement,    ///< Idle-core selection when a sleeper wakes.
  Affinity,         ///< Explicit sched_setaffinity by a user-level balancer.
  LinuxPeriodic,    ///< Linux load balancer periodic pull.
  LinuxNewIdle,     ///< Linux new-idle balancing pull.
  LinuxPush,        ///< Linux migration-thread push to an idle core.
  SpeedBalancer,    ///< The paper's user-level speed balancer.
  Dwrr,             ///< DWRR round balancing steal.
  Ule,              ///< FreeBSD ULE push migration.
  Hotplug,          ///< Forced off an offlined core (perturbation drain).
};

/// Number of MigrationCause enumerators (dense, starting at 0).
inline constexpr std::size_t kNumMigrationCauses =
    static_cast<std::size_t>(MigrationCause::Hotplug) + 1;

const char* to_string(MigrationCause cause);
/// Inverse of to_string; returns Affinity for unrecognized strings.
MigrationCause parse_migration_cause(std::string_view s);

/// One recorded migration event.
struct MigrationRecord {
  SimTime time = 0;
  TaskId task = -1;
  CoreId from = -1;
  CoreId to = -1;
  MigrationCause cause = MigrationCause::Affinity;
};

/// One contiguous stretch of execution of a task on a core.
struct RunSegment {
  TaskId task = -1;
  CoreId core = -1;
  SimTime start = 0;
  SimTime dur = 0;
};

/// Run-wide observability: execution accounting per task per core, the
/// migration log, and completion times. Collected unconditionally (cheap);
/// the property tests and figure harnesses read it back.
///
/// Recording is *staged*: the per-event hot path appends one compact POD to
/// a flat pending buffer (a single store into a linear array — no per-task
/// indexing, no allocator), and the dense tables (per-task-per-core exec,
/// interval accumulators, the segment log) are built in batches — when the
/// buffer fills, or on demand the moment any query method runs. Queries
/// therefore always see exact values; only the *location* of the work moved
/// out of the event loop. Interval lists live in a bump arena so their
/// growth never hits the global allocator; reset() recycles the arena slabs
/// for the next run.
class Metrics {
 public:
  explicit Metrics(int num_cores)
      : num_cores_(num_cores),
        empty_(static_cast<std::size_t>(num_cores), SimTime{0}) {
    cause_counts_.fill(0);
  }

  /// One contiguous execution stretch: stages both the exec-table add and
  /// the segment/interval append in a single record. This is the
  /// Simulator's per-dispatch call (previously record_run + record_segment).
  void record_exec(TaskId task, CoreId core, SimTime start, SimTime dur) {
    stage(task, core, start, dur, kExec | kSegment);
  }

  /// Exec-table-only accounting (no segment); kept for callers that account
  /// execution without timestamps.
  void record_run(TaskId task, CoreId core, SimTime dur) {
    stage(task, core, 0, dur, kExec);
  }

  /// Record run segments with timestamps, without exec-table accounting
  /// (`record_exec` does both). Segment capture costs memory proportional
  /// to context switches; it is always on — runs are short-lived objects.
  /// Segments of one task are expected in non-decreasing start order (they
  /// cannot overlap); out-of-order recording is tolerated but pays a sorted
  /// insert at drain time.
  void record_segment(const RunSegment& seg) {
    stage(seg.task, seg.core, seg.start, seg.dur, kSegment);
  }

  void record_migration(const MigrationRecord& rec);

  /// Attach an observability recorder: every subsequent migration is also
  /// appended to the recorder's telemetry buffer as a compact record (traced
  /// in batches at flush). Registers the MigrationCause names as the
  /// buffer's kind table. Null (the default) disables telemetry at the cost
  /// of one pointer test per migration.
  void set_recorder(obs::RunRecorder* rec);
  obs::RunRecorder* recorder() const { return recorder_; }

  const std::vector<RunSegment>& segments() const {
    drain();
    return segments_;
  }

  /// Execution time of `task` within the window [from, to) (clipped).
  /// O(log segments-of-task) via the per-task interval accumulator.
  SimTime exec_in_window(TaskId task, SimTime from, SimTime to) const;

  /// Fraction of the task's execution spent on cores where `pred(core)`
  /// holds (e.g. "the fast queues" of the Section 4 analysis). Zero when
  /// the task never ran.
  double residency_fraction(TaskId task,
                            const std::function<bool(CoreId)>& pred) const;

  /// Total execution time of `task` on each core (indexed by CoreId).
  const std::vector<SimTime>& exec_by_core(TaskId task) const;
  SimTime total_exec(TaskId task) const;

  const std::vector<MigrationRecord>& migrations() const { return migrations_; }
  /// O(1): served from the running per-cause tally.
  std::int64_t migration_count(MigrationCause cause) const {
    return cause_counts_[static_cast<std::size_t>(cause)];
  }
  std::int64_t migration_count() const {
    return static_cast<std::int64_t>(migrations_.size());
  }
  /// Migration totals attributed to each cause that occurred at least once.
  /// Built from the running tally — does not rescan the migration log.
  std::map<MigrationCause, std::int64_t> migration_counts_by_cause() const;

  /// Clear all recorded state for reuse by another run. Retains the outer
  /// table capacities and the interval arena's slabs, so a reused Metrics
  /// reaches its high-water memory once and then records allocation-free.
  void reset();

  /// Records staged but not yet drained into the dense tables (test hook;
  /// any query method drains implicitly).
  std::size_t staged() const { return pending_.size(); }

  int num_cores() const { return num_cores_; }

 private:
  /// One run segment of a task, with the task's cumulative execution before
  /// this segment (`cum`), enabling O(log n) windowed sums.
  struct Interval {
    SimTime start = 0;
    SimTime dur = 0;
    SimTime cum = 0;
    SimTime end() const { return start + dur; }
  };

  /// Staged accounting record (24 bytes). `kind` says which tables the
  /// record feeds when drained.
  struct Pending {
    SimTime start;
    SimTime dur;
    TaskId task;
    std::int16_t core;
    std::uint8_t kind;
  };
  static constexpr std::uint8_t kExec = 1;     ///< per-task-per-core table
  static constexpr std::uint8_t kSegment = 2;  ///< segment log + intervals

  /// Drain the pending buffer when it reaches this many records, bounding
  /// staged memory; queries drain whatever is staged regardless.
  static constexpr std::size_t kDrainBatch = 8192;

  void stage(TaskId task, CoreId core, SimTime start, SimTime dur,
             std::uint8_t kind) {
    pending_.push_back({start, dur, task, static_cast<std::int16_t>(core), kind});
    if (pending_.size() >= kDrainBatch) drain();
  }

  /// Apply every staged record, in recording order, to the dense tables.
  /// Const because queries trigger it: the tables are caches of the staged
  /// stream, so building them does not change observable state.
  void drain() const;
  void drain_segment(TaskId task, CoreId core, SimTime start,
                     SimTime dur) const;

  int num_cores_;
  mutable std::vector<Pending> pending_;
  /// Per-task per-core execution, indexed [task][core]; rows are allocated
  /// on a task's first run.
  mutable std::vector<std::vector<SimTime>> exec_;
  /// Per-task interval accumulator, indexed [task]; sorted by start, with
  /// exactly-adjacent same-core runs merged (exec_in_window is unaffected:
  /// contiguous intervals sum identically merged or split). Backed by the
  /// arena below.
  mutable std::vector<ArenaVector<Interval>> intervals_;
  mutable Arena arena_;
  mutable std::vector<RunSegment> segments_;
  /// Core of the last interval per task, for the adjacent-merge check
  /// (intervals themselves don't store the core).
  mutable std::vector<std::int16_t> last_core_;
  std::vector<MigrationRecord> migrations_;
  std::array<std::int64_t, kNumMigrationCauses> cause_counts_;
  /// Correctly-sized all-zero row returned for tasks that never ran, so
  /// callers may always index [core].
  std::vector<SimTime> empty_;
  obs::RunRecorder* recorder_ = nullptr;
};

/// Flush a finished run's metrics into the recorder: one bulk append of
/// compact run-segment records (the trace writer derives "run" spans from
/// them lazily) and "migrations.<cause>" aggregate counters. `node` tags the
/// segments with a cluster node id (-1 = single-machine run); node-tagged
/// segments render on per-node Chrome-trace tracks.
void export_run_to_recorder(const Metrics& metrics, obs::RunRecorder& rec,
                            int node = -1);

}  // namespace speedbal
