#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "obs/recorder.hpp"
#include "sim/task.hpp"
#include "topo/topology.hpp"
#include "util/time.hpp"

namespace speedbal {

/// Why a migration happened; lets the experiments attribute migration
/// volume to each balancing mechanism.
enum class MigrationCause {
  ForkPlacement,    ///< Initial core choice at task start.
  WakePlacement,    ///< Idle-core selection when a sleeper wakes.
  Affinity,         ///< Explicit sched_setaffinity by a user-level balancer.
  LinuxPeriodic,    ///< Linux load balancer periodic pull.
  LinuxNewIdle,     ///< Linux new-idle balancing pull.
  LinuxPush,        ///< Linux migration-thread push to an idle core.
  SpeedBalancer,    ///< The paper's user-level speed balancer.
  Dwrr,             ///< DWRR round balancing steal.
  Ule,              ///< FreeBSD ULE push migration.
  Hotplug,          ///< Forced off an offlined core (perturbation drain).
};

const char* to_string(MigrationCause cause);

/// One recorded migration event.
struct MigrationRecord {
  SimTime time = 0;
  TaskId task = -1;
  CoreId from = -1;
  CoreId to = -1;
  MigrationCause cause = MigrationCause::Affinity;
};

/// One contiguous stretch of execution of a task on a core.
struct RunSegment {
  TaskId task = -1;
  CoreId core = -1;
  SimTime start = 0;
  SimTime dur = 0;
};

/// Run-wide observability: execution accounting per task per core, the
/// migration log, and completion times. Collected unconditionally (cheap);
/// the property tests and figure harnesses read it back.
class Metrics {
 public:
  explicit Metrics(int num_cores)
      : num_cores_(num_cores),
        empty_(static_cast<std::size_t>(num_cores), SimTime{0}) {}

  void record_run(TaskId task, CoreId core, SimTime dur);
  void record_migration(const MigrationRecord& rec);

  /// Attach an observability recorder: every subsequent migration also
  /// becomes an instant trace event. Null (the default) disables tracing at
  /// the cost of one pointer test per migration.
  void set_recorder(obs::RunRecorder* rec) { recorder_ = rec; }
  obs::RunRecorder* recorder() const { return recorder_; }

  /// Record run segments with timestamps (`record_run` is called with the
  /// segment end = start + dur by the Simulator). Segment capture costs
  /// memory proportional to context switches; it is always on — runs are
  /// short-lived objects.
  void record_segment(const RunSegment& seg) { segments_.push_back(seg); }
  const std::vector<RunSegment>& segments() const { return segments_; }

  /// Execution time of `task` within the window [from, to) (clipped).
  SimTime exec_in_window(TaskId task, SimTime from, SimTime to) const;

  /// Fraction of the task's execution spent on cores where `pred(core)`
  /// holds (e.g. "the fast queues" of the Section 4 analysis). Zero when
  /// the task never ran.
  double residency_fraction(TaskId task,
                            const std::function<bool(CoreId)>& pred) const;

  /// Total execution time of `task` on each core (indexed by CoreId).
  const std::vector<SimTime>& exec_by_core(TaskId task) const;
  SimTime total_exec(TaskId task) const;

  const std::vector<MigrationRecord>& migrations() const { return migrations_; }
  std::int64_t migration_count(MigrationCause cause) const;
  std::int64_t migration_count() const {
    return static_cast<std::int64_t>(migrations_.size());
  }
  /// Migration totals attributed to each cause that occurred at least once.
  std::map<MigrationCause, std::int64_t> migration_counts_by_cause() const;

  int num_cores() const { return num_cores_; }

 private:
  int num_cores_;
  std::map<TaskId, std::vector<SimTime>> exec_;
  std::vector<MigrationRecord> migrations_;
  std::vector<RunSegment> segments_;
  /// Correctly-sized all-zero row returned for tasks that never ran, so
  /// callers may always index [core].
  std::vector<SimTime> empty_;
  obs::RunRecorder* recorder_ = nullptr;
};

/// Flush a finished run's metrics into the recorder: per-segment span
/// events (one track per core, capped by the collector's span cap) and
/// "migrations.<cause>" aggregate counters.
void export_run_to_recorder(const Metrics& metrics, obs::RunRecorder& rec);

}  // namespace speedbal
