#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "sim/cache_model.hpp"
#include "sim/cfs_queue.hpp"
#include "sim/core_state.hpp"
#include "sim/event_queue.hpp"
#include "sim/metrics.hpp"
#include "sim/task.hpp"
#include "topo/domains.hpp"
#include "topo/topology.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace speedbal {

/// Simulator-wide tunables.
struct SimParams {
  CfsParams cfs;
  /// Override the topology-derived memory model parameters.
  std::optional<MemoryModelParams> mem;
  /// Staleness window of the load information consulted at task start-up
  /// (the paper's footnote: "idleness information is not updated when
  /// multiple tasks start simultaneously").
  SimTime load_snapshot_period = msec(10);
  /// NUMA first-touch model: a task's memory home node is fixed where it is
  /// running once it has accumulated this much execution. Real applications
  /// allocate their working set a little into the run — after a user-level
  /// balancer's initial pinning, not at the fork-placement instant. Until
  /// the home is fixed, memory behaves as local to wherever the task runs.
  SimTime first_touch_exec = msec(10);
};

/// Discrete-event simulator of a multicore machine running per-core CFS
/// schedulers. Balancing policies (Linux load balancing, speed balancing,
/// DWRR, ULE) plug in from src/balance by scheduling their own events and
/// calling `migrate`. Applications plug in from src/app via TaskClient.
///
/// Execution model: work is expressed in microseconds at nominal speed; a
/// task's effective speed on a core is clock_scale x SMT contention x memory
/// effects (NUMA locality + bandwidth saturation, see MemoryModel). Tasks
/// stop at timeslice expiry or work completion, whichever comes first;
/// partial execution can be flushed at any instant (`sync_accounting`) so
/// balancers always observe exact per-thread CPU time, the way the real
/// speedbalancer reads /proc taskstats.
class Simulator {
 public:
  Simulator(const Topology& topo, SimParams params = {}, std::uint64_t seed = 1);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  const Topology& topo() const { return topo_; }
  const DomainTree& domains() const { return domains_; }
  const MemoryModel& memory() const { return memory_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  /// Attach an observability recorder: migrations become instant trace
  /// events as they happen (see obs::RunRecorder). Null (default) is free
  /// apart from one pointer test per migration.
  void set_recorder(obs::RunRecorder* rec) { metrics_.set_recorder(rec); }
  obs::RunRecorder* recorder() const { return metrics_.recorder(); }
  Rng& rng() { return rng_; }
  SimTime now() const { return events_.now(); }
  int num_cores() const { return topo_.num_cores(); }

  // --- Task lifecycle -----------------------------------------------------

  /// Create a task; the Simulator owns it for the simulation's lifetime.
  Task& create_task(TaskSpec spec);

  /// Start a task using Linux fork placement: the least-loaded allowed core
  /// according to the (possibly stale) load snapshot.
  void start_task(Task& t, std::uint64_t allowed_mask = ~0ULL);

  /// Start a task on a specific core (the round-robin initial pinning the
  /// user-level speed balancer performs, or an explicitly pinned task).
  void start_task_on(Task& t, CoreId core, std::uint64_t allowed_mask = ~0ULL);

  /// Give the task `work_us` microseconds of nominal-speed work and clear
  /// any wait mode. Legal on Runnable, Running, or Sleeping (assign before
  /// wake) tasks. work_us must be > 0.
  void assign_work(Task& t, double work_us);

  /// Enter a busy-wait (Spin) or poll+sched_yield (Yield) wait; the task
  /// remains on its run queue until released by assign_work or sleep.
  void set_wait_mode(Task& t, WaitMode mode);

  /// Block the task indefinitely (removed from its run queue).
  void sleep_task(Task& t);

  /// Block the task and automatically wake it after `dur` (usleep).
  void sleep_task_for(Task& t, SimTime dur);

  /// Wake a sleeping task; chooses a core via Linux wakeup placement
  /// (previous core if idle, else a nearby idle core) and may preempt.
  void wake_task(Task& t);

  /// Remove a Runnable/Running task from its run queue without blocking it
  /// (a scheduler policy's expired queue, e.g. DWRR). The application may
  /// still sleep or finish a parked task.
  void park_task(Task& t);

  /// Return a Parked task to its core's run queue.
  void unpark_task(Task& t);

  /// Terminate the task permanently.
  void finish_task(Task& t);

  /// sched_setaffinity: restrict the task to `mask` and migrate immediately
  /// if its current core is excluded. `hard_pin` marks the task as moved by
  /// a user-level balancer: the Linux load balancer will never touch it.
  /// Returns false — affinity unchanged, mirroring the kernel's EINVAL —
  /// when the mask contains no online core.
  bool set_affinity(Task& t, std::uint64_t mask, bool hard_pin,
                    MigrationCause cause = MigrationCause::Affinity);

  /// Move a task to another core's run queue (balancer migration). The
  /// currently running task is stopped first (sched_setaffinity semantics:
  /// it does not get to finish its quantum). Charges the cache-refill cost.
  void migrate(Task& t, CoreId to, MigrationCause cause);

  // --- Perturbations (DVFS & hotplug) -------------------------------------

  /// DVFS: change one core's relative clock speed mid-run. The running
  /// task's partial execution is charged at the old speed before the new
  /// one takes effect, and its stop event is rescheduled.
  void set_clock_scale(CoreId core, double scale);

  /// CPU hotplug. Offlining drains the core: the running task is stopped
  /// and every queued task migrates to the least-loaded online core in its
  /// affinity mask (MigrationCause::Hotplug); a task with no online allowed
  /// core has its mask widened to all online cores, mirroring the kernel's
  /// select_fallback_rq affinity-breaking. Onlining marks the core eligible
  /// for placement again (nothing moves back automatically — that is the
  /// balancers' job). No-op when the state already matches; throws
  /// std::invalid_argument when offlining would leave no core online.
  void set_core_online(CoreId core, bool online);

  bool core_online(CoreId c) const { return core(c).online(); }
  std::uint64_t online_mask() const;
  int num_online_cores() const;

  // --- Time control -------------------------------------------------------

  EventHandle schedule_at(SimTime t, EventFn fn);
  EventHandle schedule_after(SimTime dt, EventFn fn);
  void cancel(EventHandle h) { events_.cancel(h); }

  /// Execute one event; false when none are pending.
  bool step() { return events_.run_next(); }
  void run_until(SimTime t) { events_.run_until(t); }

  /// Total events executed so far; wall-clock / events gives the
  /// simulator's end-to-end cost per event (see bench/micro_hotpath).
  std::uint64_t events_executed() const { return events_.executed(); }

  /// Run until `until()` returns true or the time cap / event exhaustion is
  /// hit; returns true if the predicate was satisfied.
  bool run_while_pending(const std::function<bool()>& until, SimTime cap);

  // --- Queries & hooks for balancers ---------------------------------------

  CoreState& core(CoreId id) { return cores_.at(static_cast<std::size_t>(id)); }
  const CoreState& core(CoreId id) const {
    return cores_.at(static_cast<std::size_t>(id));
  }

  /// Flush the partial execution of the running task on `core` so that task
  /// exec times and remaining work are exact as of now().
  void sync_accounting(CoreId core);
  void sync_all_accounting();

  /// Total time `t` has spent blocked, including an in-progress sleep
  /// (Task::total_sleep only covers closed intervals).
  SimTime total_sleep(const Task& t) const {
    return t.total_sleep() +
           (t.sleep_since() != kNever ? now() - t.sleep_since() : 0);
  }

  /// All live (non-finished) tasks, and those queued on a given core.
  /// These forms allocate a fresh vector per call; hot callers (balancer
  /// scans, invariant probes) should use the out-buffer or visitor
  /// variants below.
  std::vector<Task*> live_tasks() const;
  std::vector<Task*> tasks_on(CoreId core) const;

  /// Allocation-free snapshots into caller-owned reuse buffers.
  void live_tasks(std::vector<Task*>& out) const;
  void tasks_on(CoreId core, std::vector<Task*>& out) const;

  /// Visit every live (non-finished) task without materializing a list.
  template <typename Fn>
  void for_each_live_task(Fn&& fn) const {
    for (const Task& t : tasks_)
      if (t.state() != TaskState::Finished) fn(const_cast<Task*>(&t));
  }

  /// Visit the tasks queued on `core` in vruntime order.
  template <typename Fn>
  void for_each_task_on(CoreId core, Fn&& fn) const {
    this->core(core).queue().for_each(fn);
  }

  /// Every task ever created (ids are dense from 0), including Finished
  /// ones — the audience for whole-run conservation checks, which must sum
  /// over hogs and spikes that live_tasks() no longer reports.
  int num_tasks() const { return next_task_id_; }
  const Task& task(TaskId id) const {
    return tasks_.at(static_cast<std::size_t>(id));
  }

  /// True if the balancer may move `t` to `to` (affinity, liveness; note
  /// Linux additionally refuses Running tasks — that is the caller's rule).
  bool can_migrate(const Task& t, CoreId to) const;

  /// Hook invoked when a core's run queue empties (Linux new-idle
  /// balancing); the hook may migrate a task into the core.
  void set_idle_hook(std::function<void(CoreId)> hook) { idle_hook_ = std::move(hook); }

  /// Total demand currently running against a NUMA node's memory and
  /// system-wide (units of MemoryModelParams capacities); for tests.
  double node_demand(int node) const { return node_demand_.at(static_cast<std::size_t>(node)); }
  double system_demand() const { return system_demand_; }

 private:
  static constexpr double kWorkEps = 1e-6;

  void dispatch(CoreId core);
  void start_running(CoreId core, Task& t);
  void flush_accounting(CoreId core);
  void core_stop(CoreId core);
  /// Stop the running task without requeueing decisions (caller handles).
  void halt_running(CoreId core);
  void reschedule_stop(CoreId core);
  double compute_speed(const Task& t, CoreId core) const;
  void add_running_demand(const Task& t, int sign);
  void refresh_speeds(const Task& changed);
  CoreId select_core_fork(const Task& t);
  CoreId select_core_wake(const Task& t);
  CoreId least_loaded_online(std::uint64_t mask) const;
  void enqueue_on(Task& t, CoreId core, bool sleeper_bonus);
  void maybe_refresh_load_snapshot();

  Topology topo_;  // Non-const: DVFS perturbations mutate clock scales.
  const DomainTree domains_;
  SimParams params_;
  MemoryModel memory_;
  EventQueue events_;
  Metrics metrics_;
  Rng rng_;

  // Struct-of-arrays stores for hot task/core state. Declared before the
  // object containers whose elements point into them.
  TaskStore task_store_;
  CoreStore core_store_;

  /// Tasks by value; a deque keeps addresses stable as tasks are appended
  /// (Task& handles live for the simulation's lifetime).
  std::deque<Task> tasks_;
  std::vector<CoreState> cores_;

  std::vector<double> node_demand_;
  double system_demand_ = 0.0;

  std::function<void(CoreId)> idle_hook_;

  // Stale load view used by fork placement.
  std::vector<int> load_snapshot_;
  SimTime load_snapshot_time_ = kNever;

  int next_task_id_ = 0;
};

}  // namespace speedbal
