#pragma once

#include <cstdint>

#include "sim/cfs_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "util/time.hpp"

namespace speedbal {

/// Per-core scheduler state: the CFS run queue plus the dispatch bookkeeping
/// the Simulator needs (who is running, since when, at what effective speed,
/// and the stop event that will end the current dispatch).
class CoreState {
 public:
  CoreState(CoreId id, CfsParams params) : id_(id), queue_(params) {}

  CoreId id() const { return id_; }
  CfsQueue& queue() { return queue_; }
  const CfsQueue& queue() const { return queue_; }

  Task* running() const { return running_; }
  bool idle() const { return running_ == nullptr && queue_.empty(); }

  /// Hotplug state: offline cores execute nothing and reject placements
  /// (Simulator::set_core_online drains them). Mirrors Linux cpu_online_mask.
  bool online() const { return online_; }

  /// Effective execution speed of the running task (clock scale x memory
  /// effects); meaningless when nothing is running.
  double current_speed() const { return current_speed_; }

  /// Cumulative time this core spent executing any task.
  SimTime busy_time() const { return busy_time_; }
  /// Simulation time at which the core last became idle (kNever if busy).
  SimTime idle_since() const { return idle_since_; }

 private:
  friend class Simulator;

  CoreId id_;
  CfsQueue queue_;

  Task* running_ = nullptr;
  SimTime run_start_ = 0;        ///< When the current dispatch began.
  SimTime slice_end_ = 0;        ///< When the current timeslice expires.
  double current_speed_ = 1.0;
  EventHandle stop_event_;       ///< Pending CoreStop for this dispatch.

  SimTime busy_time_ = 0;
  SimTime idle_since_ = 0;
  bool online_ = true;
};

}  // namespace speedbal
