#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/cfs_queue.hpp"
#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "util/time.hpp"

namespace speedbal {

/// Struct-of-arrays backing store for the per-core dispatch state touched on
/// every event, indexed by CoreId. The Simulator owns one store for all its
/// cores; scans like "who is running everywhere" or "which cores are online"
/// walk one dense array each instead of striding across CoreState objects.
class CoreStore {
 public:
  void init(std::size_t n) {
    running.assign(n, nullptr);
    run_start.assign(n, SimTime{0});
    slice_end.assign(n, SimTime{0});
    current_speed.assign(n, 1.0);
    stop_event.assign(n, EventHandle{});
    busy_time.assign(n, SimTime{0});
    idle_since.assign(n, SimTime{0});
    online.assign(n, std::uint8_t{1});
    in_dispatch.assign(n, std::uint8_t{0});
  }

  std::vector<Task*> running;
  std::vector<SimTime> run_start;   ///< When the current dispatch began.
  std::vector<SimTime> slice_end;   ///< When the current timeslice expires.
  std::vector<double> current_speed;
  std::vector<EventHandle> stop_event;  ///< Pending CoreStop per core.
  std::vector<SimTime> busy_time;
  std::vector<SimTime> idle_since;
  std::vector<std::uint8_t> online;
  /// Dispatch re-entrancy latch (idle hooks may call back into dispatch).
  std::vector<std::uint8_t> in_dispatch;
};

/// Per-core scheduler state: the CFS run queue plus the dispatch bookkeeping
/// the Simulator needs (who is running, since when, at what effective speed,
/// and the stop event that will end the current dispatch). The hot fields
/// live in the Simulator's CoreStore; accessors read through to it.
class CoreState {
 public:
  CoreState(CoreId id, CfsParams params, CoreStore& store)
      : id_(id), queue_(params), store_(&store) {}

  CoreId id() const { return id_; }
  CfsQueue& queue() { return queue_; }
  const CfsQueue& queue() const { return queue_; }

  Task* running() const { return store_->running[cid()]; }
  bool idle() const { return running() == nullptr && queue_.empty(); }

  /// Hotplug state: offline cores execute nothing and reject placements
  /// (Simulator::set_core_online drains them). Mirrors Linux cpu_online_mask.
  bool online() const { return store_->online[cid()] != 0; }

  /// Effective execution speed of the running task (clock scale x memory
  /// effects); meaningless when nothing is running.
  double current_speed() const { return store_->current_speed[cid()]; }

  /// Cumulative time this core spent executing any task.
  SimTime busy_time() const { return store_->busy_time[cid()]; }
  /// Simulation time at which the core last became idle (kNever if busy).
  SimTime idle_since() const { return store_->idle_since[cid()]; }

 private:
  friend class Simulator;

  std::size_t cid() const { return static_cast<std::size_t>(id_); }

  Task*& running_ref() { return store_->running[cid()]; }
  SimTime& run_start_ref() { return store_->run_start[cid()]; }
  SimTime& slice_end_ref() { return store_->slice_end[cid()]; }
  double& current_speed_ref() { return store_->current_speed[cid()]; }
  EventHandle& stop_event_ref() { return store_->stop_event[cid()]; }
  SimTime& busy_time_ref() { return store_->busy_time[cid()]; }
  SimTime& idle_since_ref() { return store_->idle_since[cid()]; }
  std::uint8_t& online_ref() { return store_->online[cid()]; }
  std::uint8_t& in_dispatch_ref() { return store_->in_dispatch[cid()]; }

  CoreId id_;
  CfsQueue queue_;
  CoreStore* store_;
};

}  // namespace speedbal
