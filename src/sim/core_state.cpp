#include "sim/core_state.hpp"

// CoreState is a data holder mutated by the Simulator; no out-of-line logic.
