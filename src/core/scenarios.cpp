#include "core/scenarios.hpp"

#include <algorithm>

#include "workload/generator.hpp"

namespace speedbal::scenarios {

const char* to_string(Setup s) {
  switch (s) {
    case Setup::OnePerCore: return "One-per-core";
    case Setup::Pinned: return "PINNED";
    case Setup::LoadYield: return "LOAD-YIELD";
    case Setup::LoadSleep: return "LOAD-SLEEP";
    case Setup::SpeedYield: return "SPEED-YIELD";
    case Setup::SpeedSleep: return "SPEED-SLEEP";
    case Setup::Dwrr: return "DWRR";
    case Setup::FreeBsd: return "FreeBSD";
  }
  return "?";
}

ExperimentConfig npb_config(const Topology& topo, const NpbProfile& prof,
                            int nthreads, int cores, Setup setup, int repeats,
                            std::uint64_t seed) {
  ExperimentConfig cfg;
  cfg.topo = topo;
  cfg.cores = cores;
  cfg.repeats = repeats;
  cfg.seed = seed;

  BarrierConfig barrier = workload::upc_yield_barrier();
  switch (setup) {
    case Setup::OnePerCore:
      nthreads = cores;
      cfg.policy = Policy::Pinned;
      break;
    case Setup::Pinned:
      cfg.policy = Policy::Pinned;
      break;
    case Setup::LoadYield:
      cfg.policy = Policy::Load;
      break;
    case Setup::LoadSleep:
      cfg.policy = Policy::Load;
      barrier = workload::usleep_barrier();
      break;
    case Setup::SpeedYield:
      cfg.policy = Policy::Speed;
      break;
    case Setup::SpeedSleep:
      cfg.policy = Policy::Speed;
      barrier = workload::usleep_barrier();
      break;
    case Setup::Dwrr:
      cfg.policy = Policy::Dwrr;
      break;
    case Setup::FreeBsd:
      cfg.policy = Policy::Ule;
      break;
  }
  cfg.app = prof.to_spec(nthreads, barrier);
  // NUMA blocking only matters (and only applies) on NUMA machines.
  cfg.speed.block_numa = topo.num_numa_nodes() > 1;
  return cfg;
}

ExperimentResult run_npb(const Topology& topo, const NpbProfile& prof,
                         int nthreads, int cores, Setup setup, int repeats,
                         std::uint64_t seed, int jobs) {
  auto cfg = npb_config(topo, prof, nthreads, cores, setup, repeats, seed);
  cfg.jobs = jobs;
  return run_experiment(cfg);
}

double serial_runtime_s(const Topology& topo, const NpbProfile& prof,
                        int nthreads, std::uint64_t seed) {
  auto cfg = npb_config(topo, prof, nthreads, /*cores=*/1, Setup::Pinned,
                        /*repeats=*/1, seed);
  const auto result = run_experiment(cfg);
  return result.mean_runtime();
}

}  // namespace speedbal::scenarios
