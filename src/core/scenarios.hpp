#pragma once

#include <cstdint>
#include <string>

#include "core/experiment.hpp"
#include "workload/npb.hpp"

namespace speedbal::scenarios {

/// The named configurations plotted in the paper's figures (Fig. 3, 5, 6):
/// a balancing policy combined with a barrier implementation.
enum class Setup {
  OnePerCore,  ///< Recompiled with one thread per core, pinned (the ideal).
  Pinned,      ///< Fixed thread count, static round-robin pinning.
  LoadYield,   ///< Linux balancing; sched_yield barriers (UPC/MPI default).
  LoadSleep,   ///< Linux balancing; usleep(1) barriers (modified runtime).
  SpeedYield,  ///< Speed balancing; sched_yield barriers.
  SpeedSleep,  ///< Speed balancing; usleep(1) barriers.
  Dwrr,        ///< DWRR kernel; sched_yield barriers.
  FreeBsd,     ///< ULE push balancer; sched_yield barriers.
};

const char* to_string(Setup s);

/// Build the experiment configuration for running `prof` compiled with
/// `nthreads` threads on the first `cores` cores of `topo` under `setup`.
/// (For OnePerCore the thread count is clamped to the core count, as the
/// paper recompiles the benchmark.)
ExperimentConfig npb_config(const Topology& topo, const NpbProfile& prof,
                            int nthreads, int cores, Setup setup,
                            int repeats = 10, std::uint64_t seed = 42);

/// Run the configuration built by npb_config. `jobs` replicas execute
/// concurrently (see ExperimentConfig::jobs); results are identical for
/// any value.
ExperimentResult run_npb(const Topology& topo, const NpbProfile& prof,
                         int nthreads, int cores, Setup setup,
                         int repeats = 10, std::uint64_t seed = 42,
                         int jobs = 1);

/// Baseline for speedup curves: the same `nthreads`-thread binary run on a
/// single core (pinned). One run suffices — it is deterministic up to work
/// jitter.
double serial_runtime_s(const Topology& topo, const NpbProfile& prof,
                        int nthreads, std::uint64_t seed = 42);

}  // namespace speedbal::scenarios
