#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "app/multiprog.hpp"
#include "app/spmd.hpp"
#include "balance/adaptive.hpp"
#include "balance/dwrr.hpp"
#include "balance/linux_load.hpp"
#include "balance/speed.hpp"
#include "balance/ule.hpp"
#include "hetero/share.hpp"
#include "obs/recorder.hpp"
#include "perturb/timeline.hpp"
#include "topo/topology.hpp"
#include "util/stats.hpp"

namespace speedbal {

/// Which balancing policy governs the run. LOAD/SPEED/PINNED follow the
/// paper's terminology; Speed and Pinned coexist with the kernel Linux
/// balancer exactly as in the paper (their threads are invisible to it).
enum class Policy {
  Load,    ///< Default Linux queue-length balancing only.
  Speed,   ///< User-level speed balancing on top of the Linux kernel.
  Pinned,  ///< Static round-robin pinning (application-level balancing).
  Dwrr,    ///< DWRR kernel replacing the Linux balancer.
  Ule,     ///< FreeBSD ULE push balancer replacing the Linux balancer.
  None,    ///< No balancing at all (fork placement only); for experiments.
  Share,   ///< Speed-weighted work partitioning: threads stay pinned, the
           ///< per-phase work shares follow measured core speed (hetero).
};

const char* to_string(Policy p);

/// One experiment: an SPMD application on a machine under a policy,
/// repeated with different seeds (the paper reports 10+ runs everywhere
/// because LOAD is erratic).
struct ExperimentConfig {
  Topology topo = Topology::build({});
  SpmdAppSpec app;
  Policy policy = Policy::Load;
  /// Restrict to the first `cores` cores (the paper's taskset); 0 = all.
  int cores = 0;
  int repeats = 10;
  std::uint64_t seed = 42;
  /// Replicas executed concurrently (each on its own Simulator with its own
  /// salted RNG stream). Results are merged in repeat order, so every
  /// aggregate, report, and trace is byte-identical for any value; 1 (the
  /// default) runs today's sequential loop. 0 means hardware concurrency.
  int jobs = 1;
  /// Simulated-time cap per run; runs that exceed it are marked incomplete.
  SimTime time_cap = sec(3600);

  SpeedBalanceParams speed;
  LinuxLoadParams linux_load;
  DwrrParams dwrr;
  UleParams ule;
  hetero::ShareParams share;
  /// Online tuning of the SPEED constants (`--adaptive`): when enabled, the
  /// run wraps the speed balancer in the adaptive controller; `speed` above
  /// still supplies the base constant-set (portfolio arm 0).
  AdaptiveParams adaptive;
  SimParams sim;

  /// Optional competitors sharing the machine.
  bool cpu_hog = false;
  CoreId cpu_hog_core = 0;
  std::optional<MakeSpec> make;

  /// Scripted interference: DVFS changes, hotplug, cpu-hog start/stop, work
  /// spikes, injected failures — applied at their scheduled times in every
  /// repeat (see perturb::SimPerturbDriver).
  perturb::PerturbTimeline perturb;

  /// Per-run hooks, called with the repeat index: `on_run_start` right
  /// after the application and balancers are attached (install custom
  /// probes via Simulator::schedule_at here), `on_run_end` when the run is
  /// over but the simulation state is still alive (harvest application
  /// series such as phase times). Null = unused. With jobs > 1 the hooks
  /// run concurrently from pool workers: they must only touch per-repeat
  /// state (e.g. write into a slot indexed by the repeat argument).
  std::function<void(Simulator&, SpmdApp&, int)> on_run_start;
  std::function<void(Simulator&, SpmdApp&, int)> on_run_end;

  /// Observability: when set, the repeat selected by `recorded_repeat` runs
  /// with full tracing (speed timeline, decision log, migration events, run
  /// segments) into this recorder. Null = no tracing (the default; the only
  /// residual cost is a pointer test on the hot paths).
  obs::RunRecorder* recorder = nullptr;
  int recorded_repeat = 0;
};

/// Outcome of a single run.
struct RunResult {
  bool completed = false;
  double runtime_s = 0.0;  ///< Application elapsed time (seconds).
  std::int64_t total_migrations = 0;
  std::int64_t policy_migrations = 0;  ///< By the policy under test.
  /// Migration totals attributed to each mechanism (fork/wake placement,
  /// kernel balancing, the policy under test, ...).
  std::map<MigrationCause, std::int64_t> migrations_by_cause;
};

/// Aggregated outcome across repeats.
struct ExperimentResult {
  std::vector<RunResult> runs;
  Summary runtime;  ///< Over completed runs' runtime_s.

  bool all_completed() const;
  double mean_runtime() const { return runtime.mean; }
  double worst_runtime() const { return runtime.max; }
  double best_runtime() const { return runtime.min; }
  /// The paper's "% variation": max/min - 1 over the repeated runs.
  double variation_pct() const { return runtime.variation_pct(); }
  double mean_migrations() const;
  /// Per-cause migration means over the repeated runs.
  std::map<MigrationCause, double> mean_migrations_by_cause() const;
};

/// Run the experiment: `repeats` independent simulations with derived
/// seeds; returns the per-run results and aggregate statistics.
ExperimentResult run_experiment(const ExperimentConfig& config);

}  // namespace speedbal
