#include "core/experiment.hpp"

#include <memory>
#include <numeric>

#include "balance/pinned.hpp"
#include "perturb/sim_driver.hpp"
#include "util/parallel.hpp"
#include "workload/generator.hpp"

namespace speedbal {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::Load: return "LOAD";
    case Policy::Speed: return "SPEED";
    case Policy::Pinned: return "PINNED";
    case Policy::Dwrr: return "DWRR";
    case Policy::Ule: return "ULE";
    case Policy::None: return "NONE";
    case Policy::Share: return "SHARE";
  }
  return "?";
}

bool ExperimentResult::all_completed() const {
  for (const auto& r : runs)
    if (!r.completed) return false;
  return !runs.empty();
}

double ExperimentResult::mean_migrations() const {
  if (runs.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& r : runs) sum += static_cast<double>(r.total_migrations);
  return sum / static_cast<double>(runs.size());
}

std::map<MigrationCause, double> ExperimentResult::mean_migrations_by_cause() const {
  std::map<MigrationCause, double> out;
  if (runs.empty()) return out;
  for (const auto& r : runs)
    for (const auto& [cause, count] : r.migrations_by_cause)
      out[cause] += static_cast<double>(count);
  for (auto& [cause, sum] : out) {
    (void)cause;
    sum /= static_cast<double>(runs.size());
  }
  return out;
}

namespace {

RunResult run_once(const ExperimentConfig& config, std::uint64_t seed,
                   obs::RunRecorder* recorder, int rep) {
  SimParams sim_params = config.sim;
  // FreeBSD's sched_pickcpu consults the current queue states at thread
  // creation; the stale-snapshot quirk is specific to the Linux fork path
  // (the paper's footnote 1). Without it ULE starts balanced and behaves
  // like static pinning, as the paper observes (Fig. 3).
  if (config.policy == Policy::Ule) sim_params.load_snapshot_period = 0;
  Simulator sim(config.topo, sim_params, seed);
  sim.set_recorder(recorder);
  const int k = config.cores > 0 ? config.cores : config.topo.num_cores();
  const auto cores = workload::first_cores(k);

  // Competitors start first, as the paper's already-running unrelated tasks.
  std::unique_ptr<CpuHog> hog;
  if (config.cpu_hog) {
    hog = std::make_unique<CpuHog>(sim);
    hog->launch(config.cpu_hog_core);
  }
  std::unique_ptr<MakeWorkload> make;
  if (config.make) make = std::make_unique<MakeWorkload>(sim, *config.make);

  // Scripted interference timeline (DVFS, hotplug, hogs, spikes).
  std::unique_ptr<perturb::SimPerturbDriver> perturber;
  if (!config.perturb.empty()) {
    perturber = std::make_unique<perturb::SimPerturbDriver>(sim, config.perturb);
    perturber->set_recorder(recorder);
    perturber->arm();
  }

  // Kernel-level policy. Speed/Pinned coexist with the Linux balancer;
  // DWRR and ULE replace it.
  std::unique_ptr<LinuxLoadBalancer> linux_lb;
  std::unique_ptr<DwrrBalancer> dwrr;
  std::unique_ptr<UleBalancer> ule;
  switch (config.policy) {
    case Policy::Dwrr:
      dwrr = std::make_unique<DwrrBalancer>(config.dwrr);
      dwrr->attach(sim);
      break;
    case Policy::Ule:
      ule = std::make_unique<UleBalancer>(config.ule);
      ule->attach(sim);
      break;
    case Policy::None:
      break;
    default:
      linux_lb = std::make_unique<LinuxLoadBalancer>(config.linux_load);
      linux_lb->attach(sim);
      break;
  }

  // SHARE partitions work instead of moving threads: the balancer must
  // exist before the app (launch-time phase_work queries it), and the hook
  // goes on a per-run copy of the spec — config.app is shared across
  // concurrent replicas.
  SpmdAppSpec app_spec = config.app;
  std::unique_ptr<hetero::ShareBalancer> share;
  if (config.policy == Policy::Share) {
    share = std::make_unique<hetero::ShareBalancer>(
        config.share, std::vector<CoreId>(cores.begin(), cores.end()));
    app_spec.partitioner = share.get();
  }
  SpmdApp app(sim, app_spec);
  const auto placement =
      config.policy == Policy::Pinned || config.policy == Policy::Share
          ? SpmdApp::Placement::RoundRobin
          : SpmdApp::Placement::LinuxFork;
  app.launch(placement, cores);
  if (make) make->launch(cores);

  // User-level policy on the application's threads.
  std::unique_ptr<SpeedBalancer> speed;
  std::unique_ptr<AdaptiveSpeedBalancer> adaptive;
  std::unique_ptr<PinnedBalancer> pinned;
  if (config.policy == Policy::Speed && config.adaptive.enabled) {
    AdaptiveParams ap = config.adaptive;
    ap.speed = config.speed;
    adaptive = std::make_unique<AdaptiveSpeedBalancer>(std::move(ap),
                                                       app.threads(), cores);
    adaptive->attach(sim);
    if (recorder != nullptr) adaptive->set_recorder(recorder);
  } else if (config.policy == Policy::Speed) {
    speed = std::make_unique<SpeedBalancer>(config.speed, app.threads(), cores);
    speed->attach(sim);
    if (recorder != nullptr) speed->set_recorder(recorder);
  } else if (config.policy == Policy::Pinned) {
    pinned = std::make_unique<PinnedBalancer>(app.threads(), cores);
    pinned->attach(sim);
  } else if (config.policy == Policy::Share) {
    share->set_managed(app.threads());
    if (recorder != nullptr) share->set_recorder(recorder);
    share->attach(sim);
  }

  if (config.on_run_start) config.on_run_start(sim, app, rep);

  RunResult result;
  result.completed = sim.run_while_pending([&] { return app.finished(); },
                                           config.time_cap);
  if (config.on_run_end) config.on_run_end(sim, app, rep);
  result.runtime_s = result.completed ? to_sec(app.elapsed())
                                      : to_sec(config.time_cap);
  result.total_migrations = sim.metrics().migration_count();
  result.migrations_by_cause = sim.metrics().migration_counts_by_cause();
  if (recorder != nullptr) export_run_to_recorder(sim.metrics(), *recorder);
  switch (config.policy) {
    case Policy::Speed:
      result.policy_migrations =
          sim.metrics().migration_count(MigrationCause::SpeedBalancer);
      break;
    case Policy::Dwrr:
      result.policy_migrations = sim.metrics().migration_count(MigrationCause::Dwrr);
      break;
    case Policy::Ule:
      result.policy_migrations = sim.metrics().migration_count(MigrationCause::Ule);
      break;
    default:
      result.policy_migrations =
          sim.metrics().migration_count(MigrationCause::LinuxPeriodic) +
          sim.metrics().migration_count(MigrationCause::LinuxNewIdle) +
          sim.metrics().migration_count(MigrationCause::LinuxPush);
      break;
  }
  return result;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  ExperimentResult out;
  out.runs.resize(static_cast<std::size_t>(std::max(config.repeats, 0)));
  // Each replica is an independent Simulator with its own salted seed; only
  // the recorded repeat carries the recorder. Results land in their repeat
  // slot, so aggregates below see the same order regardless of jobs.
  parallel_for_seeds(config.jobs, config.repeats, config.seed,
                     [&](int rep, std::uint64_t seed) {
                       obs::RunRecorder* recorder =
                           rep == config.recorded_repeat ? config.recorder : nullptr;
                       out.runs[static_cast<std::size_t>(rep)] =
                           run_once(config, seed, recorder, rep);
                     });
  std::vector<double> runtimes;
  runtimes.reserve(out.runs.size());
  for (const RunResult& r : out.runs) runtimes.push_back(r.runtime_s);
  out.runtime = summarize(runtimes);
  return out;
}

}  // namespace speedbal
