// Quickstart: run one NAS-style benchmark under the paper's three main
// configurations (LOAD / PINNED / SPEED) and print the comparison.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API:
//   1. pick a machine preset (Table 1),
//   2. pick a workload profile (Table 2),
//   3. run it under a scenarios::Setup,
//   4. read runtimes / speedups / variation from the ExperimentResult.

#include <iostream>

#include "core/scenarios.hpp"
#include "topo/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace speedbal;

  const Topology machine = presets::tigerton();   // 4 sockets x 4 cores, UMA.
  const NpbProfile bench = npb::ep('A');          // Embarrassingly parallel.
  const int threads = 16;
  const int cores = 6;  // Deliberately not a divisor of 16.

  std::cout << "Machine: " << machine.name() << " (" << machine.num_cores()
            << " cores), benchmark " << bench.full_name() << ", " << threads
            << " threads on " << cores << " cores\n\n";

  const double serial = scenarios::serial_runtime_s(machine, bench, threads);

  Table table({"setup", "mean runtime (s)", "speedup", "variation %",
               "migrations/run"});
  for (const auto setup :
       {scenarios::Setup::OnePerCore, scenarios::Setup::Pinned,
        scenarios::Setup::LoadYield, scenarios::Setup::SpeedYield}) {
    const auto result =
        scenarios::run_npb(machine, bench, threads, cores, setup, /*repeats=*/5);
    table.add_row({to_string(setup), Table::num(result.mean_runtime(), 3),
                   Table::num(serial / result.mean_runtime(), 2),
                   Table::num(result.variation_pct(), 1),
                   Table::num(result.mean_migrations(), 0)});
  }
  table.print(std::cout);

  std::cout << "\nSPEED tracks the recompiled One-per-core ideal; PINNED is "
               "limited by the\nslowest core (3 threads of 16/6); LOAD never "
               "fixes the start-up imbalance.\n";
  return 0;
}
