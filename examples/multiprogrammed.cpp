// Non-dedicated environments (Section 6.3 / Fig. 5): a parallel application
// sharing the machine with an unrelated compute-intensive task ("cpu-hog")
// pinned to core 0.
//
// With one thread per core and static pinning, the whole application is
// slowed to the speed of the thread sharing core 0 (50%). Speed balancing
// perceives the contended core as slow and rotates threads around it, so
// every thread absorbs a small, equal share of the interference.

#include <iostream>

#include "core/scenarios.hpp"
#include "topo/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace speedbal;

  const Topology machine = presets::tigerton();
  const NpbProfile bench = npb::ep('A');
  const int cores = 8;

  std::cout << "EP with one thread per core on " << cores
            << " cores, sharing with a cpu-hog pinned to core 0 (Fig. 5).\n\n";

  const double serial = scenarios::serial_runtime_s(machine, bench, cores);

  Table table({"setup", "hog", "runtime (s)", "speedup", "variation %"});
  for (const bool hog : {false, true}) {
    for (const auto setup :
         {scenarios::Setup::OnePerCore, scenarios::Setup::LoadYield,
          scenarios::Setup::SpeedYield}) {
      auto cfg = scenarios::npb_config(machine, bench, cores, cores, setup, 5);
      cfg.cpu_hog = hog;
      cfg.cpu_hog_core = 0;
      const auto result = run_experiment(cfg);
      table.add_row({to_string(setup), hog ? "yes" : "no",
                     Table::num(result.mean_runtime(), 3),
                     Table::num(serial / result.mean_runtime(), 2),
                     Table::num(result.variation_pct(), 1)});
    }
  }
  table.print(std::cout);

  std::cout << "\nWithout the hog all setups are near-ideal. With it, "
               "One-per-core drops to ~half\n(the barrier waits for the "
               "thread sharing core 0) while SPEED degrades gracefully:\nthe "
               "hog costs one core's worth of capacity, spread evenly.\n";
  return 0;
}
