// Real-OS demonstration: runs an actual pthread SPMD microbenchmark (busy
// work + barriers) on this machine while the paper's user-level speed
// balancer (src/native) monitors and balances it through /proc and
// sched_setaffinity — the same code path the `speedbalancer` tool uses.
//
// On a many-core host the balancer rotates the threads when the count does
// not divide the cores; on a 1-CPU sandbox it simply observes (no
// migration targets), which is also exercised here.

#include <unistd.h>

#include <chrono>
#include <iostream>
#include <thread>

#include "native/affinity.hpp"
#include "native/speed_balancer.hpp"
#include "native/spmd_runtime.hpp"
#include "util/table.hpp"

int main() {
  using namespace speedbal;
  using namespace speedbal::native;

  const int cpus = online_cpus();
  const int nthreads = cpus + 1;  // Deliberately one more thread than cores.

  std::cout << "Host has " << cpus << " online CPU(s); running " << nthreads
            << " SPMD threads with yield barriers under the native speed "
               "balancer.\n\n";

  NativeBalancerConfig config;
  config.interval = std::chrono::milliseconds(50);
  config.startup_delay = std::chrono::milliseconds(10);
  NativeSpeedBalancer balancer(::getpid(), config);
  balancer.start();

  NativeSpmdSpec spec;
  spec.nthreads = nthreads;
  spec.phases = 8;
  spec.work_per_phase = std::chrono::milliseconds(60);
  spec.policy = NativeWaitPolicy::Yield;
  const auto result = run_native_spmd(spec);

  balancer.stop();

  Table table({"metric", "value"});
  table.add_row({"threads", std::to_string(nthreads)});
  table.add_row({"phases", std::to_string(spec.phases)});
  table.add_row({"wall time (s)", Table::num(result.wall_seconds, 3)});
  table.add_row({"balancer migrations", std::to_string(balancer.migrations())});
  table.add_row({"global speed (last pass)", Table::num(balancer.global_speed(), 2)});
  table.print(std::cout);

  std::cout << "\nPer-thread busy-loop progress (equal progress is the goal):\n";
  Table progress({"thread", "iterations"});
  for (std::size_t i = 0; i < result.iterations.size(); ++i)
    progress.add_row({std::to_string(i), std::to_string(result.iterations[i])});
  progress.print(std::cout);
  return 0;
}
