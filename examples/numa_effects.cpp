// NUMA effects (Section 6.4): on the Barcelona-like machine, migrating a
// memory-intensive thread to another NUMA node leaves its pages behind —
// every subsequent access is remote. The paper's balancer therefore blocks
// cross-NUMA migrations by default (and pays a bigger one-time refill when
// they are allowed).
//
// This example runs a bandwidth-hungry benchmark (bt.A) on Barcelona with
// NUMA blocking on and off, and on the UMA Tigerton for contrast.

#include <iostream>

#include "core/scenarios.hpp"
#include "topo/presets.hpp"
#include "util/table.hpp"

int main() {
  using namespace speedbal;

  const NpbProfile bench = npb::bt('A');
  const int threads = 16;
  const int cores = 12;  // Uneven: balancing actually has work to do.

  std::cout << "bt.A, " << threads << " threads on " << cores
            << " cores under SPEED (Section 6.4).\n\n";

  Table table({"machine", "NUMA migrations", "runtime (s)", "variation %",
               "speed migrations/run"});

  for (const bool block : {true, false}) {
    auto cfg = scenarios::npb_config(presets::barcelona(), bench, threads,
                                     cores, scenarios::Setup::SpeedYield, 5);
    cfg.speed.block_numa = block;
    const auto result = run_experiment(cfg);
    double policy = 0;
    for (const auto& run : result.runs)
      policy += static_cast<double>(run.policy_migrations) /
                static_cast<double>(result.runs.size());
    table.add_row({"barcelona", block ? "blocked" : "allowed",
                   Table::num(result.mean_runtime(), 3),
                   Table::num(result.variation_pct(), 1), Table::num(policy, 1)});
  }
  {
    const auto result = scenarios::run_npb(presets::tigerton(), bench, threads,
                                           cores, scenarios::Setup::SpeedYield, 5);
    double policy = 0;
    for (const auto& run : result.runs)
      policy += static_cast<double>(run.policy_migrations) /
                static_cast<double>(result.runs.size());
    table.add_row({"tigerton", "n/a (UMA)", Table::num(result.mean_runtime(), 3),
                   Table::num(result.variation_pct(), 1), Table::num(policy, 1)});
  }
  table.print(std::cout);

  std::cout << "\nOn Barcelona the memory-bound benchmark benefits from "
               "keeping threads on the\nnode that holds their pages; Tigerton "
               "has no such constraint but its shared\nfront-side bus caps "
               "the absolute performance (Table 2's 4.6x vs 10x).\n";
  return 0;
}
