// Observability walkthrough: run the paper's 3-threads-on-2-cores case
// under speed balancing and *watch the rotation* through the Metrics trace
// API — an ASCII timeline of which core each thread occupied in every
// 100 ms window, plus per-thread core-residency fractions.
//
// This is the Section 4 mechanism made visible: each thread alternates
// between being the solo occupant of a core (full speed, shown as a core
// letter) and sharing one (half speed, shown lowercase).

#include <iostream>

#include "balance/linux_load.hpp"
#include "balance/speed.hpp"
#include "topo/presets.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace speedbal;

int main() {
  Simulator sim(presets::generic(2), {}, 42);
  LinuxLoadBalancer lb;
  lb.attach(sim);

  SpmdAppSpec spec = workload::uniform_app(3, 1, 2e6);  // 2 s each, 1 phase.
  SpmdApp app(sim, spec);
  app.launch(SpmdApp::Placement::LinuxFork, workload::first_cores(2));
  SpeedBalancer sb({}, app.threads(), workload::first_cores(2));
  sb.attach(sim);

  sim.run_while_pending([&] { return app.finished(); }, sec(60));
  const SimTime wall = app.elapsed();
  std::cout << "3 threads x 2 s of work on 2 cores under speed balancing: "
            << "finished in " << to_sec(wall) << " s (static would take 4 s, "
            << "ideal rotation 3 s).\n\n";

  // Timeline: one column per 100 ms window; A/B = mostly-solo on core 0/1
  // (>90% of the window), a/b = sharing, '.' = mostly waiting or unplaced.
  std::cout << "Timeline (100 ms windows):\n";
  for (const Task* t : app.threads()) {
    std::cout << "  " << t->name() << " ";
    for (SimTime w = 0; w + msec(100) <= wall; w += msec(100)) {
      const SimTime exec = sim.metrics().exec_in_window(t->id(), w, w + msec(100));
      // Which core dominated this window? Approximate by current residency:
      // use segments via exec share and the task's per-core totals.
      char symbol = '.';
      if (exec > msec(90)) {
        symbol = 'S';  // Solo somewhere: near wall-rate execution.
      } else if (exec > msec(25)) {
        symbol = 's';  // Sharing a core.
      }
      std::cout << symbol;
    }
    std::cout << '\n';
  }
  std::cout << "  (S = solo on a core, s = sharing, . = waiting)\n\n";

  Table table({"thread", "exec (s)", "on core 0", "on core 1", "migrations"});
  for (const Task* t : app.threads()) {
    table.add_row({t->name(), Table::num(to_sec(t->total_exec()), 2),
                   Table::num(sim.metrics().residency_fraction(
                                  t->id(), [](CoreId c) { return c == 0; }) * 100, 0) + "%",
                   Table::num(sim.metrics().residency_fraction(
                                  t->id(), [](CoreId c) { return c == 1; }) * 100, 0) + "%",
                   std::to_string(t->migrations())});
  }
  table.print(std::cout);

  std::cout << "\nEvery thread alternates solo/shared windows and executes "
               "~2 s total: equal\nprogress, the speed balancing invariant.\n";
  return 0;
}
