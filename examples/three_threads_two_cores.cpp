// The paper's motivating example (Section 4): an application with three
// threads on a two-core system.
//
// Queue-length balancing (Linux) assigns two threads to one core and never
// migrates again — the application perceives the system at 50% speed. Speed
// balancing rotates the threads so each makes equal progress, approaching
// the ideal 75% average thread speed (makespan 1.5x one thread's work).
//
// This example drives the Simulator directly (lower-level API than
// quickstart) and prints per-thread execution times to show the rotation.

#include <iostream>

#include "balance/linux_load.hpp"
#include "balance/speed.hpp"
#include "topo/presets.hpp"
#include "util/table.hpp"
#include "workload/generator.hpp"

using namespace speedbal;

namespace {

struct RunOutcome {
  double elapsed_s = 0.0;
  std::vector<double> thread_exec_s;
  std::int64_t migrations = 0;
};

RunOutcome run(bool with_speed_balancing, std::uint64_t seed) {
  Simulator sim(presets::generic(2), {}, seed);

  LinuxLoadBalancer linux_lb;
  linux_lb.attach(sim);

  SpmdAppSpec spec = workload::uniform_app(/*nthreads=*/3, /*phases=*/1,
                                           /*work_per_phase_us=*/4e6);
  SpmdApp app(sim, spec);
  app.launch(SpmdApp::Placement::LinuxFork, workload::first_cores(2));

  SpeedBalancer speed({}, app.threads(), workload::first_cores(2));
  if (with_speed_balancing) speed.attach(sim);

  sim.run_while_pending([&] { return app.finished(); }, sec(600));

  RunOutcome out;
  out.elapsed_s = to_sec(app.elapsed());
  for (const Task* t : app.threads())
    out.thread_exec_s.push_back(to_sec(t->total_exec()));
  out.migrations = sim.metrics().migration_count(MigrationCause::SpeedBalancer);
  return out;
}

}  // namespace

int main() {
  std::cout << "Three threads x 4s of work on two cores (Section 4).\n"
            << "Ideal rotated makespan: 3*4/2 = 6s. Static makespan: 8s.\n\n";

  Table table({"balancer", "wall time (s)", "t0 exec", "t1 exec", "t2 exec",
               "speed migrations"});
  for (const bool speed : {false, true}) {
    const auto out = run(speed, 42);
    table.add_row({speed ? "LOAD + speedbalancer" : "LOAD only",
                   Table::num(out.elapsed_s, 2),
                   Table::num(out.thread_exec_s[0], 2),
                   Table::num(out.thread_exec_s[1], 2),
                   Table::num(out.thread_exec_s[2], 2),
                   std::to_string(out.migrations)});
  }
  table.print(std::cout);

  std::cout << "\nUnder LOAD only, the doubled-up threads each run ~4s of "
               "work in ~8s of wall\ntime (50% speed). With speed balancing "
               "every thread finishes together near 6s.\n";
  return 0;
}
